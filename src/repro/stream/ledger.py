"""Append-only JSONL run ledger — the stream subsystem's persistent state.

Every consequential step of an :class:`~repro.stream.controller.
InSituController` run is appended as one JSON line with a monotonic
sequence id::

    {"seq": 0, "kind": "run_start",     "data": {...}}
    {"seq": 1, "kind": "calibration",   "data": {"field": ..., "exponent": ...}}
    {"seq": 2, "kind": "decision",      "data": {"ebs": [...], ...}}
    {"seq": 3, "kind": "outcome",       "data": {"compressed_bytes": ...}}
    {"seq": 4, "kind": "budget",        "data": {"scale_next": ...}}
    ...
    {"seq": n, "kind": "run_end",       "data": {...}}

Design rules:

- **Append-only.**  Events are flushed line by line as they happen; an
  interrupted run leaves a valid prefix.  Re-opening an existing ledger
  file continues the sequence (ids stay monotonic across process
  restarts).
- **Self-contained decisions.**  Every model parameter, feature vector
  and governor input that produced a decision is recorded, so
  :func:`repro.stream.controller.replay_ledger` can re-execute the
  decision logic — optimizer, budget governor and all — and reproduce
  the exact per-partition error bounds *without reading any field
  data*.  Floats survive the JSON round trip exactly (``json`` emits
  ``repr``-precision), which is what makes bitwise replay possible.
- **Dependency-free format.**  Plain JSON lines; numpy scalars/arrays
  are converted to Python numbers/lists on append.
- **Canonical bytes.**  Lines are written with sorted keys and compact
  separators so the serialized form of an event is a pure function of
  its content — the precondition for the planned hash-chained ledger.
  Reading tolerates any key order/whitespace, so ledgers written before
  canonicalization still load and replay byte-for-byte.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

__all__ = [
    "EVENT_KINDS",
    "LEDGER_SCHEMA_VERSION",
    "LedgerError",
    "LedgerEvent",
    "RunLedger",
]

#: Schema version a ``run_start`` event records as ``data["schema"]``.
#: Version 1 (PR 4-era ledgers) predates the pluggable compressor
#: backbone and carries no ``schema`` key; version 2 adds ``selection``
#: events and the chosen compressor spec on calibration/decision events.
#: Replay treats every spec field as informational, so version-1 ledgers
#: still replay byte-for-byte.
LEDGER_SCHEMA_VERSION = 2

#: The event vocabulary, in the order a run emits them.  ``governor``
#: arms the run-level byte-budget governor (recorded separately from
#: ``run_start`` because the snapshot count may only become known when a
#: sized stream is handed to ``run()``); ``selection`` records a
#: per-field compressor-selection outcome (candidate verdicts included;
#: schema v2); ``calibration`` is the initial per-field model fit;
#: ``recalibration`` a drift- or policy-triggered refit; ``decision``
#: the per-(snapshot, field) error bounds; ``outcome`` the achieved
#: rate/quality; ``budget`` the governor's per-snapshot accounting.
EVENT_KINDS = (
    "run_start",
    "governor",
    "selection",
    "calibration",
    "recalibration",
    "decision",
    "outcome",
    "budget",
    "run_end",
)


class LedgerError(ValueError):
    """A malformed ledger file or an out-of-order append."""


def _jsonable(value: Any) -> Any:
    """Recursively convert numpy containers/scalars to plain JSON types."""
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot serialize {type(value).__name__} into the ledger")


@dataclass(frozen=True)
class LedgerEvent:
    """One ledger line: a monotonic id, an event kind, and its payload."""

    seq: int
    kind: str
    data: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        """Canonical serialization: sorted keys, compact separators.

        The byte layout is part of the ledger contract — the ROADMAP's
        hash-chain upgrade hashes these exact bytes, so a pure refactor
        must not be able to reorder them.  Reading is key-order
        agnostic (``json.loads``), which keeps pre-canonical ledgers
        (PR 4/5 era, ``{"seq": ..., "kind": ..., "data": ...}`` order
        with spaces) loading and replaying unchanged.
        """
        return json.dumps(
            {"seq": self.seq, "kind": self.kind, "data": self.data},
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, line: str) -> "LedgerEvent":
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise LedgerError(f"malformed ledger line: {line[:80]!r}") from exc
        if not isinstance(obj, dict) or "seq" not in obj or "kind" not in obj:
            raise LedgerError(f"ledger line missing seq/kind: {line[:80]!r}")
        if obj["kind"] not in EVENT_KINDS:
            raise LedgerError(f"unknown ledger event kind {obj['kind']!r}")
        return cls(seq=int(obj["seq"]), kind=str(obj["kind"]), data=obj.get("data", {}))


class RunLedger:
    """Append-only event log, optionally mirrored to a JSONL file.

    Parameters
    ----------
    path:
        JSONL file to append to.  ``None`` keeps the ledger in memory
        only (useful for tests and ephemeral runs).  If the file already
        holds events, they are loaded and the sequence continues after
        them — the append-only contract spans process restarts.

    Examples
    --------
    >>> ledger = RunLedger()
    >>> ledger.append("run_start", n_snapshots=8).seq
    0
    >>> ledger.append("decision", field="temperature", ebs=[0.5, 0.25]).seq
    1
    >>> [e.kind for e in ledger.select("decision")]
    ['decision']
    """

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self.events: list[LedgerEvent] = []
        self._fh = None
        if self.path is not None:
            if self.path.exists() and self.path.stat().st_size > 0:
                self.events = self._read_events(self.path)
            self._fh = open(self.path, "a", encoding="utf-8")

    # -- append side -----------------------------------------------------

    @property
    def next_seq(self) -> int:
        return self.events[-1].seq + 1 if self.events else 0

    def append(self, kind: str, **data: Any) -> LedgerEvent:
        """Record one event; assigns the next sequence id and flushes."""
        if kind not in EVENT_KINDS:
            raise LedgerError(
                f"unknown event kind {kind!r}; expected one of {EVENT_KINDS}"
            )
        if self.path is not None and self._fh is None:
            # A closed (or load()-ed read-only) file-backed ledger must
            # not degrade to memory-only: events would silently be
            # missing from disk and a later replay would verify a
            # truncated run without noticing.
            raise LedgerError(
                f"ledger {self.path} is closed; re-open it with "
                "RunLedger(path) to continue appending"
            )
        event = LedgerEvent(seq=self.next_seq, kind=kind, data=_jsonable(data))
        self.events.append(event)
        if self._fh is not None:
            self._fh.write(event.to_json() + "\n")
            self._fh.flush()
        return event

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        where = str(self.path) if self.path else "<memory>"
        return f"RunLedger({where!r}, n_events={len(self.events)})"

    # -- read side -------------------------------------------------------

    def select(self, kind: str) -> list[LedgerEvent]:
        """Events of one kind, in sequence order."""
        if kind not in EVENT_KINDS:
            raise LedgerError(f"unknown event kind {kind!r}")
        return [e for e in self.events if e.kind == kind]

    @staticmethod
    def _read_events(path: Path) -> list[LedgerEvent]:
        events: list[LedgerEvent] = []
        with open(path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                event = LedgerEvent.from_json(line)
                if event.seq != len(events):
                    raise LedgerError(
                        f"{path}:{lineno}: sequence id {event.seq} breaks the "
                        f"monotonic order (expected {len(events)})"
                    )
                events.append(event)
        return events

    @classmethod
    def load(cls, path: str | os.PathLike) -> "RunLedger":
        """Read a ledger file without opening it for appending."""
        ledger = cls.__new__(cls)
        ledger.path = Path(path)
        ledger._fh = None
        ledger.events = cls._read_events(ledger.path)
        return ledger
