"""Append-only JSONL run ledger — the stream subsystem's persistent state.

Every consequential step of an :class:`~repro.stream.controller.
InSituController` run is appended as one JSON line with a monotonic
sequence id::

    {"seq": 0, "kind": "run_start",     "data": {...}}
    {"seq": 1, "kind": "calibration",   "data": {"field": ..., "exponent": ...}}
    {"seq": 2, "kind": "decision",      "data": {"ebs": [...], ...}}
    {"seq": 3, "kind": "outcome",       "data": {"compressed_bytes": ...}}
    {"seq": 4, "kind": "budget",        "data": {"scale_next": ...}}
    ...
    {"seq": n, "kind": "run_end",       "data": {...}}

Design rules:

- **Append-only.**  Events are flushed line by line as they happen; an
  interrupted run leaves a valid prefix.  Re-opening an existing ledger
  file continues the sequence (ids stay monotonic across process
  restarts).
- **Self-contained decisions.**  Every model parameter, feature vector
  and governor input that produced a decision is recorded, so
  :func:`repro.stream.controller.replay_ledger` can re-execute the
  decision logic — optimizer, budget governor and all — and reproduce
  the exact per-partition error bounds *without reading any field
  data*.  Floats survive the JSON round trip exactly (``json`` emits
  ``repr``-precision), which is what makes bitwise replay possible.
- **Dependency-free format.**  Plain JSON lines; numpy scalars/arrays
  are converted to Python numbers/lists on append.
- **Canonical bytes.**  Lines are written with sorted keys and compact
  separators so the serialized form of an event is a pure function of
  its content — the precondition for the planned hash-chained ledger.
  Reading tolerates any key order/whitespace, so ledgers written before
  canonicalization still load and replay byte-for-byte.
- **Crash-safe.**  Each append is flushed (and optionally ``fsync``-ed)
  as one line, so the only damage an interruption can cause is a torn
  *final* line.  ``RunLedger(path, recover=True)`` truncates such a
  tail back to the last valid prefix and records a ``recovery`` event;
  ``RunLedger.load(path, recover=True)`` is the read-only equivalent
  (reports the torn tail via ``recovered_tail`` without touching the
  file).  Damage anywhere else — a malformed or out-of-order line with
  valid lines after it — is corruption, not a crash artifact, and
  always raises.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.resilience.faults import TornWrite, fault_point

__all__ = [
    "EVENT_KINDS",
    "LEDGER_SCHEMA_VERSION",
    "LedgerError",
    "LedgerEvent",
    "RunLedger",
]

#: Schema version a ``run_start`` event records as ``data["schema"]``.
#: Version 1 (PR 4-era ledgers) predates the pluggable compressor
#: backbone and carries no ``schema`` key; version 2 adds ``selection``
#: events and the chosen compressor spec on calibration/decision events;
#: version 3 adds the resilience vocabulary (``recovery``, ``resume``,
#: ``degradation`` events) and records the block decomposition on
#: ``run_start`` so :meth:`~repro.stream.controller.InSituController.
#: resume` can rebuild it.  Replay treats every addition as
#: informational or state-resetting, so version-1/2 ledgers still
#: replay byte-for-byte.
LEDGER_SCHEMA_VERSION = 3

#: The event vocabulary, in the order a run emits them.  ``governor``
#: arms the run-level byte-budget governor (recorded separately from
#: ``run_start`` because the snapshot count may only become known when a
#: sized stream is handed to ``run()``); ``selection`` records a
#: per-field compressor-selection outcome (candidate verdicts included;
#: schema v2); ``calibration`` is the initial per-field model fit;
#: ``recalibration`` a drift- or policy-triggered refit; ``decision``
#: the per-(snapshot, field) error bounds; ``outcome`` the achieved
#: rate/quality; ``budget`` the governor's per-snapshot accounting.
#: The resilience events (schema v3) can appear anywhere: ``recovery``
#: marks a torn tail truncated on re-open, ``resume`` marks a restarted
#: run picking up after an interruption (replay resets its
#: partial-snapshot byte accounting there), and ``degradation`` records
#: a field falling back to its conservative compressor after retries
#: were exhausted.
EVENT_KINDS = (
    "run_start",
    "governor",
    "selection",
    "calibration",
    "recalibration",
    "decision",
    "outcome",
    "budget",
    "run_end",
    "recovery",
    "resume",
    "degradation",
)


class LedgerError(ValueError):
    """A malformed ledger file or an out-of-order append."""


def _jsonable(value: Any) -> Any:
    """Recursively convert numpy containers/scalars to plain JSON types."""
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot serialize {type(value).__name__} into the ledger")


@dataclass(frozen=True)
class LedgerEvent:
    """One ledger line: a monotonic id, an event kind, and its payload."""

    seq: int
    kind: str
    data: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        """Canonical serialization: sorted keys, compact separators.

        The byte layout is part of the ledger contract — the ROADMAP's
        hash-chain upgrade hashes these exact bytes, so a pure refactor
        must not be able to reorder them.  Reading is key-order
        agnostic (``json.loads``), which keeps pre-canonical ledgers
        (PR 4/5 era, ``{"seq": ..., "kind": ..., "data": ...}`` order
        with spaces) loading and replaying unchanged.
        """
        return json.dumps(
            {"seq": self.seq, "kind": self.kind, "data": self.data},
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, line: str) -> "LedgerEvent":
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise LedgerError(f"malformed ledger line: {line[:80]!r}") from exc
        if not isinstance(obj, dict) or "seq" not in obj or "kind" not in obj:
            raise LedgerError(f"ledger line missing seq/kind: {line[:80]!r}")
        if obj["kind"] not in EVENT_KINDS:
            raise LedgerError(f"unknown ledger event kind {obj['kind']!r}")
        return cls(seq=int(obj["seq"]), kind=str(obj["kind"]), data=obj.get("data", {}))


class RunLedger:
    """Append-only event log, optionally mirrored to a JSONL file.

    Parameters
    ----------
    path:
        JSONL file to append to.  ``None`` keeps the ledger in memory
        only (useful for tests and ephemeral runs).  If the file already
        holds events, they are loaded and the sequence continues after
        them — the append-only contract spans process restarts.
    recover:
        Tolerate a torn final line (the on-disk state an interrupted
        append leaves behind): truncate the file back to the last valid
        prefix, record what was dropped in ``recovered_tail``, and
        append a ``recovery`` event.  An undamaged file opens
        unchanged, so ``recover=True`` is idempotent.  Damage *before*
        the final line still raises — that is corruption a crash cannot
        produce.
    fsync:
        ``os.fsync`` after every appended line, extending the
        crash-safety guarantee from "process death" to "OS/power
        failure" at the cost of one disk sync per event.

    Examples
    --------
    >>> ledger = RunLedger()
    >>> ledger.append("run_start", n_snapshots=8).seq
    0
    >>> ledger.append("decision", field="temperature", ebs=[0.5, 0.25]).seq
    1
    >>> [e.kind for e in ledger.select("decision")]
    ['decision']
    """

    def __init__(
        self,
        path: str | os.PathLike | None = None,
        *,
        recover: bool = False,
        fsync: bool = False,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.events: list[LedgerEvent] = []
        self.fsync = bool(fsync)
        #: Set when ``recover=True`` truncated a torn tail: a dict with
        #: ``valid_events``, ``valid_bytes`` (the kept prefix length),
        #: ``truncated_bytes`` and a ``torn_line`` preview.
        self.recovered_tail: dict[str, Any] | None = None
        self._fh = None
        if self.path is None:
            return
        needs_newline = False
        if self.path.exists() and self.path.stat().st_size > 0:
            if recover:
                size = self.path.stat().st_size
                self.events, valid_bytes, tail = self._scan(self.path)
                if tail is not None:
                    with open(self.path, "r+b") as raw:
                        raw.truncate(valid_bytes)
                        raw.flush()
                        os.fsync(raw.fileno())
                    self.recovered_tail = {
                        "valid_events": len(self.events),
                        "valid_bytes": valid_bytes,
                        "truncated_bytes": size - valid_bytes,
                        "torn_line": tail[:120],
                    }
            else:
                self.events = self._read_events(self.path)
            needs_newline = self._missing_final_newline(self.path)
        self._fh = open(self.path, "a", encoding="utf-8")
        if needs_newline:
            # A valid final line with the trailing "\n" lost: repair it
            # so the next append starts a fresh line instead of gluing.
            self._fh.write("\n")
            self._fh.flush()
        if self.recovered_tail is not None:
            self.append("recovery", **self.recovered_tail)

    # -- append side -----------------------------------------------------

    @property
    def next_seq(self) -> int:
        return self.events[-1].seq + 1 if self.events else 0

    def append(self, kind: str, **data: Any) -> LedgerEvent:
        """Record one event; assigns the next sequence id and flushes.

        The ``ledger.append`` fault point fires *before* the event is
        committed to memory or disk, so an injected crash/timeout leaves
        the ledger unchanged and a retried append reuses the same
        sequence id.  An injected :class:`~repro.resilience.faults.
        TornWrite` instead writes a deliberate partial line — the exact
        on-disk state a power cut mid-``write`` produces — and
        re-raises, for recovery tests.
        """
        if kind not in EVENT_KINDS:
            raise LedgerError(
                f"unknown event kind {kind!r}; expected one of {EVENT_KINDS}"
            )
        if self.path is not None and self._fh is None:
            # A closed (or load()-ed read-only) file-backed ledger must
            # not degrade to memory-only: events would silently be
            # missing from disk and a later replay would verify a
            # truncated run without noticing.
            raise LedgerError(
                f"ledger {self.path} is closed; re-open it with "
                "RunLedger(path) to continue appending"
            )
        event = LedgerEvent(seq=self.next_seq, kind=kind, data=_jsonable(data))
        line = event.to_json() + "\n"
        try:
            fault_point("ledger.append")
        except TornWrite as torn:
            if self._fh is not None:
                cut = max(0, min(len(line) - 1, int(len(line) * torn.fraction)))
                self._fh.write(line[:cut])
                self._flush()
            raise
        self.events.append(event)
        if self._fh is not None:
            self._fh.write(line)
            self._flush()
        return event

    def _flush(self) -> None:
        assert self._fh is not None
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        where = str(self.path) if self.path else "<memory>"
        return f"RunLedger({where!r}, n_events={len(self.events)})"

    # -- read side -------------------------------------------------------

    def select(self, kind: str) -> list[LedgerEvent]:
        """Events of one kind, in sequence order."""
        if kind not in EVENT_KINDS:
            raise LedgerError(f"unknown event kind {kind!r}")
        return [e for e in self.events if e.kind == kind]

    @staticmethod
    def _scan(path: Path) -> tuple[list[LedgerEvent], int, str | None]:
        """Parse ``path`` into ``(events, valid_bytes, torn_tail)``.

        ``valid_bytes`` is the length of the longest prefix of the file
        holding only complete, in-order events — the truncation target
        for recovery.  ``torn_tail`` is the unparseable final line (or
        ``None`` for an undamaged file).  A malformed or out-of-order
        line with valid lines *after* it is not a crash artifact — the
        append path writes and flushes one line at a time — so that
        still raises :class:`LedgerError`.
        """
        raw = path.read_bytes()
        events: list[LedgerEvent] = []
        valid_bytes = 0
        offset = 0
        lineno = 0
        n = len(raw)
        while offset < n:
            lineno += 1
            newline = raw.find(b"\n", offset)
            end = n if newline == -1 else newline + 1
            text = raw[offset:end].decode("utf-8", errors="replace").strip()
            if text:
                try:
                    event = LedgerEvent.from_json(text)
                except LedgerError:
                    if end != n:
                        raise
                    return events, valid_bytes, text
                if event.seq != len(events):
                    raise LedgerError(
                        f"{path}:{lineno}: sequence id {event.seq} breaks the "
                        f"monotonic order (expected {len(events)})"
                    )
                events.append(event)
            valid_bytes = end
            offset = end
        return events, valid_bytes, None

    @staticmethod
    def _read_events(path: Path) -> list[LedgerEvent]:
        events, _, tail = RunLedger._scan(path)
        if tail is not None:
            raise LedgerError(
                f"{path}: torn final line {tail[:80]!r}; open with "
                "RunLedger(path, recover=True) to truncate it back to the "
                "last valid prefix"
            )
        return events

    @staticmethod
    def _missing_final_newline(path: Path) -> bool:
        with open(path, "rb") as raw:
            raw.seek(0, os.SEEK_END)
            if raw.tell() == 0:
                return False
            raw.seek(-1, os.SEEK_END)
            return raw.read(1) != b"\n"

    @classmethod
    def load(
        cls, path: str | os.PathLike, *, recover: bool = False
    ) -> "RunLedger":
        """Read a ledger file without opening it for appending.

        With ``recover=True`` a torn final line is tolerated *without
        modifying the file*: the valid prefix is loaded and the damage
        reported via ``recovered_tail`` — how ``repro.cli stream
        --replay`` reports the truncation point of a recovered ledger.
        """
        ledger = cls.__new__(cls)
        ledger.path = Path(path)
        ledger._fh = None
        ledger.fsync = False
        ledger.recovered_tail = None
        if recover:
            size = ledger.path.stat().st_size
            ledger.events, valid_bytes, tail = cls._scan(ledger.path)
            if tail is not None:
                ledger.recovered_tail = {
                    "valid_events": len(ledger.events),
                    "valid_bytes": valid_bytes,
                    "truncated_bytes": size - valid_bytes,
                    "torn_line": tail[:120],
                }
        else:
            ledger.events = cls._read_events(ledger.path)
        return ledger
