"""Rendering sweep results as tables / CSV."""

from __future__ import annotations

import csv
import io
from collections.abc import Sequence

from repro.foresight.sweep import SweepRecord
from repro.util.tables import format_table

__all__ = ["records_to_table", "records_to_csv"]

_COLUMNS = (
    "field",
    "eb",
    "bit_rate",
    "ratio",
    "spectrum_dev",
    "halo_mass_rmse",
    "psnr_db",
    "passed",
)


def _row(r: SweepRecord) -> list[object]:
    if r.quality is None:  # rate-only / estimate-mode record
        return [r.field, r.eb, r.bit_rate, r.ratio, float("nan"), float("nan"), float("nan"), "-"]
    return [
        r.field,
        r.eb,
        r.bit_rate,
        r.ratio,
        r.quality.spectrum_worst_deviation,
        r.quality.halo_mass_rmse if r.quality.halo_mass_rmse is not None else float("nan"),
        r.quality.psnr_db,
        r.passed,
    ]


def _columns_and_rows(
    records: Sequence[SweepRecord],
) -> tuple[list[str], list[list[object]]]:
    """Prepend a compressor column when the sweep fanned over specs.

    Single-compressor sweeps (every ``record.spec`` is ``None``) keep
    the historical column set.
    """
    rows = [_row(r) for r in records]
    if any(r.spec is not None for r in records):
        cols = ["compressor", *_COLUMNS]
        rows = [
            [r.spec.label if r.spec is not None else "-", *row]
            for r, row in zip(records, rows)
        ]
        return cols, rows
    return list(_COLUMNS), rows


def records_to_table(records: Sequence[SweepRecord], title: str | None = None) -> str:
    """Aligned plain-text table of sweep records."""
    cols, rows = _columns_and_rows(records)
    return format_table(cols, rows, title=title)


def records_to_csv(records: Sequence[SweepRecord]) -> str:
    """CSV rendering (header + one line per record).

    Written through :mod:`csv` with minimal quoting: plain sweep rows
    come out identical to the historical join, while multi-compressor
    rows — whose spec labels contain commas — are quoted correctly.
    """
    cols, rows = _columns_and_rows(records)
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(cols)
    for cells in rows:
        writer.writerow([str(c) for c in cells])
    return buf.getvalue()
