"""Rendering sweep results as tables / CSV."""

from __future__ import annotations

import io
from collections.abc import Sequence

from repro.foresight.sweep import SweepRecord
from repro.util.tables import format_table

__all__ = ["records_to_table", "records_to_csv"]

_COLUMNS = (
    "field",
    "eb",
    "bit_rate",
    "ratio",
    "spectrum_dev",
    "halo_mass_rmse",
    "psnr_db",
    "passed",
)


def _row(r: SweepRecord) -> list[object]:
    if r.quality is None:  # rate-only / estimate-mode record
        return [r.field, r.eb, r.bit_rate, r.ratio, float("nan"), float("nan"), float("nan"), "-"]
    return [
        r.field,
        r.eb,
        r.bit_rate,
        r.ratio,
        r.quality.spectrum_worst_deviation,
        r.quality.halo_mass_rmse if r.quality.halo_mass_rmse is not None else float("nan"),
        r.quality.psnr_db,
        r.passed,
    ]


def records_to_table(records: Sequence[SweepRecord], title: str | None = None) -> str:
    """Aligned plain-text table of sweep records."""
    return format_table(_COLUMNS, [_row(r) for r in records], title=title)


def records_to_csv(records: Sequence[SweepRecord]) -> str:
    """CSV rendering (header + one line per record)."""
    buf = io.StringIO()
    buf.write(",".join(_COLUMNS) + "\n")
    for r in records:
        cells = _row(r)
        buf.write(",".join(str(c) for c in cells) + "\n")
    return buf.getvalue()
