"""Post-hoc quality acceptance criteria (§2.1's thresholds).

Bundles the paper's two domain criteria — power-spectrum ratio within
``1 +/- 0.01`` below ``k_max`` and halo-mass RMSE within 0.01 — together
with the generic metrics, into a single evaluation call used by the
Foresight-style sweeps and the trial-and-error baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.catalog import compare_catalogs
from repro.analysis.halos import find_halos
from repro.analysis.metrics import nrmse, psnr
from repro.analysis.spectrum import check_spectrum_quality

__all__ = ["QualityCriteria", "QualityReport", "evaluate_quality"]


@dataclass(frozen=True)
class QualityCriteria:
    """Acceptance thresholds for one field."""

    spectrum_tolerance: float = 0.01
    spectrum_k_max: int = 10
    check_halos: bool = False
    t_boundary: float | None = None
    t_halo: float | None = None
    halo_mass_rmse: float = 0.01
    halo_match_distance: float = 2.0

    def __post_init__(self) -> None:
        if self.spectrum_tolerance <= 0:
            raise ValueError("spectrum_tolerance must be positive")
        if self.check_halos and self.t_boundary is None:
            raise ValueError("halo checks require t_boundary")


@dataclass
class QualityReport:
    """All quality measurements for one (field, configuration) pair."""

    spectrum_ok: bool
    spectrum_worst_deviation: float
    halo_ok: bool | None
    halo_mass_rmse: float | None
    halo_count_change: int | None
    psnr_db: float
    nrmse_value: float

    @property
    def passed(self) -> bool:
        return self.spectrum_ok and (self.halo_ok is None or self.halo_ok)


def evaluate_quality(
    original: np.ndarray,
    reconstructed: np.ndarray,
    criteria: QualityCriteria,
) -> QualityReport:
    """Run every configured check on a reconstructed field."""
    orig = np.asarray(original, dtype=np.float64)
    rec = np.asarray(reconstructed, dtype=np.float64)
    spectrum_ok, worst = check_spectrum_quality(
        orig, rec, tolerance=criteria.spectrum_tolerance, k_max=criteria.spectrum_k_max
    )
    halo_ok: bool | None = None
    halo_rmse: float | None = None
    halo_dcount: int | None = None
    if criteria.check_halos:
        assert criteria.t_boundary is not None
        cat_o = find_halos(orig, criteria.t_boundary, criteria.t_halo)
        cat_r = find_halos(rec, criteria.t_boundary, criteria.t_halo)
        cmp = compare_catalogs(cat_o, cat_r, max_distance=criteria.halo_match_distance)
        halo_rmse = cmp.mass_rmse
        halo_dcount = cmp.count_change
        halo_ok = bool(np.isfinite(halo_rmse) and halo_rmse <= criteria.halo_mass_rmse)
    return QualityReport(
        spectrum_ok=spectrum_ok,
        spectrum_worst_deviation=worst,
        halo_ok=halo_ok,
        halo_mass_rmse=halo_rmse,
        halo_count_change=halo_dcount,
        psnr_db=psnr(orig, rec),
        nrmse_value=nrmse(orig, rec),
    )
