"""Post-hoc quality acceptance criteria (§2.1's thresholds).

Bundles the paper's two domain criteria — power-spectrum ratio within
``1 +/- 0.01`` below ``k_max`` and halo-mass RMSE within 0.01 — together
with the generic metrics, into a single evaluation call used by the
Foresight-style sweeps and the trial-and-error baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["QualityCriteria", "QualityReport", "evaluate_quality"]


@dataclass(frozen=True)
class QualityCriteria:
    """Acceptance thresholds for one field."""

    spectrum_tolerance: float = 0.01
    spectrum_k_max: int = 10
    check_halos: bool = False
    t_boundary: float | None = None
    t_halo: float | None = None
    halo_mass_rmse: float = 0.01
    halo_match_distance: float = 2.0

    def __post_init__(self) -> None:
        if self.spectrum_tolerance <= 0:
            raise ValueError("spectrum_tolerance must be positive")
        if self.check_halos and self.t_boundary is None:
            raise ValueError("halo checks require t_boundary")


@dataclass
class QualityReport:
    """All quality measurements for one (field, configuration) pair."""

    spectrum_ok: bool
    spectrum_worst_deviation: float
    halo_ok: bool | None
    halo_mass_rmse: float | None
    halo_count_change: int | None
    psnr_db: float
    nrmse_value: float

    @property
    def passed(self) -> bool:
        return self.spectrum_ok and (self.halo_ok is None or self.halo_ok)


def evaluate_quality(
    original: np.ndarray,
    reconstructed: np.ndarray,
    criteria: QualityCriteria,
) -> QualityReport:
    """Run every configured check on a reconstructed field.

    One-shot convenience front for the reference-cached engine: builds a
    throwaway :class:`~repro.foresight.evaluator.QualityEvaluator` and
    evaluates a single reconstruction.  Code that evaluates *many*
    reconstructions of the same field (sweeps, trial-and-error searches)
    should hold on to one evaluator instead, so the original-side
    spectrum/halo/moment analyses are computed only once.
    """
    from repro.foresight.evaluator import QualityEvaluator

    return QualityEvaluator(original, criteria).evaluate(reconstructed)
