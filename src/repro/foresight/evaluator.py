"""Reference-cached quality engine.

The Foresight-style methodology evaluates many reconstructions of the
*same* original field (one per trialed configuration), but the seed
:func:`repro.foresight.quality.evaluate_quality` recomputed every
original-side analysis — float64 cast, ``rfftn`` power spectrum, halo
catalog, min/max range — on each call.  A sweep over E error bounds thus
paid E redundant FFTs and E redundant halo finds of identical data.

This module amortizes that cost:

- :class:`FieldReference` lazily caches per-field invariants (float64
  view, :class:`~repro.analysis.metrics.FieldMoments`, binned power
  spectra per ``nbins``, halo catalogs per threshold pair),
- :class:`QualityEvaluator` binds a reference to one
  :class:`~repro.foresight.quality.QualityCriteria` and evaluates each
  reconstruction with exactly one ``rfftn``, at most one halo find, and
  one fused error pass (:func:`~repro.analysis.metrics.error_summary`).

Evaluators are picklable *with their caches populated* (precomputed
eagerly at construction), so process-pool quality sweeps ship the cached
reference analyses to workers instead of recomputing them there.

Report parity with the seed path is exact for spectra and halo metrics
and floating-point-tolerant for the fused PSNR/NRMSE (tested in
``tests/foresight/test_evaluator.py``).
"""

from __future__ import annotations

import numpy as np

from repro import telemetry
from repro.analysis.catalog import compare_catalogs
from repro.analysis.halos import find_halos
from repro.analysis.metrics import FieldMoments, error_summary
from repro.analysis.spectrum import (
    PowerSpectrum,
    binned_worst_deviation,
    power_spectrum,
)
from repro.foresight.quality import QualityCriteria, QualityReport

__all__ = ["FieldReference", "QualityEvaluator"]


class FieldReference:
    """Lazily cached analyses of one original (uncompressed) field.

    Every accessor computes its analysis on first use and returns the
    cached result afterwards, so any number of consumers — quality
    evaluators, budget inversions, halo-spec derivations — can share one
    reference per field without re-running ``rfftn`` or the halo finder.
    """

    def __init__(self, data: np.ndarray) -> None:
        self._data = np.asarray(data)
        self._f64: np.ndarray | None = None
        self._moments: FieldMoments | None = None
        self._spectra: dict[int | None, PowerSpectrum] = {}
        self._catalogs: dict[tuple[float, float | None], object] = {}

    @property
    def data(self) -> np.ndarray:
        return self._data

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        if state["_f64"] is not None:
            # Don't ship the field twice across pickle boundaries: once
            # the float64 view exists it serves every analysis, so the
            # unpickled reference exposes it as ``data`` too
            # (numerically equal, possibly widened dtype).
            state["_data"] = state["_f64"]
        return state

    @staticmethod
    def _note_cache(analysis: str, hit: bool) -> None:
        """Count reference-cache hits/misses (armed runs only): the rate
        is the amortization the Foresight-style sweep design claims."""
        if telemetry.enabled():
            outcome = "hits" if hit else "misses"
            telemetry.get_registry().counter(f"foresight.cache.{analysis}.{outcome}").inc()

    @property
    def f64(self) -> np.ndarray:
        """The field as float64 (cast once, shared by every analysis)."""
        self._note_cache("f64", self._f64 is not None)
        if self._f64 is None:
            self._f64 = np.asarray(self._data, dtype=np.float64)
        return self._f64

    @property
    def moments(self) -> FieldMoments:
        """Fused (min, max, sum, sum-of-squares) reduction moments."""
        self._note_cache("moments", self._moments is not None)
        if self._moments is None:
            self._moments = FieldMoments.from_field(self.f64)
        return self._moments

    def spectrum(self, nbins: int | None = None) -> PowerSpectrum:
        """Binned power spectrum of the original, cached per ``nbins``."""
        self._note_cache("spectrum", nbins in self._spectra)
        if nbins not in self._spectra:
            self._spectra[nbins] = power_spectrum(self.f64, nbins=nbins)
        return self._spectra[nbins]

    def halos(self, t_boundary: float, t_halo: float | None = None):
        """Halo catalog of the original, cached per threshold pair."""
        key = (float(t_boundary), None if t_halo is None else float(t_halo))
        self._note_cache("halos", key in self._catalogs)
        if key not in self._catalogs:
            self._catalogs[key] = find_halos(self.f64, t_boundary, t_halo)
        return self._catalogs[key]


class QualityEvaluator:
    """Evaluate many reconstructions of one field against one criteria set.

    Construction eagerly computes every original-side invariant the
    configured checks need (spectrum binned to ``spectrum_k_max``, halo
    catalog if ``check_halos``, metric moments); :meth:`evaluate` then
    costs a single ``rfftn`` of the reconstruction, at most one halo
    find, and one fused error pass per call.

    Parameters
    ----------
    original:
        The uncompressed field, or ``None`` when ``reference`` is given.
    criteria:
        Acceptance thresholds (defaults to spectrum-only
        :class:`QualityCriteria`).
    reference:
        An existing :class:`FieldReference` to share cached analyses
        with other consumers of the same field.
    """

    def __init__(
        self,
        original: np.ndarray | None = None,
        criteria: QualityCriteria | None = None,
        reference: FieldReference | None = None,
    ) -> None:
        if reference is None:
            if original is None:
                raise ValueError("need either an original field or a reference")
            reference = FieldReference(original)
        self.reference = reference
        self.criteria = criteria or QualityCriteria()
        # Only bins strictly below k_max are inspected; binning further
        # would be wasted work (power_spectrum clamps to the grid's
        # Nyquist; the floor of 1 keeps the k_max<=1 error path).
        self._nbins = max(int(self.criteria.spectrum_k_max) - 1, 1)
        # Eager precompute: pickled evaluators carry populated caches, so
        # pool workers never re-analyze the original.
        self._ps_orig = self.reference.spectrum(self._nbins)
        self._moments = self.reference.moments
        if self.criteria.check_halos:
            assert self.criteria.t_boundary is not None
            self.reference.halos(self.criteria.t_boundary, self.criteria.t_halo)

    def evaluate(self, reconstructed: np.ndarray) -> QualityReport:
        """Run every configured check on one reconstructed field."""
        crit = self.criteria
        rec = np.asarray(reconstructed, dtype=np.float64)
        ps_rec = power_spectrum(rec, nbins=self._nbins)
        worst = binned_worst_deviation(self._ps_orig, ps_rec, crit.spectrum_k_max)
        spectrum_ok = worst <= crit.spectrum_tolerance

        halo_ok: bool | None = None
        halo_rmse: float | None = None
        halo_dcount: int | None = None
        if crit.check_halos:
            assert crit.t_boundary is not None
            cat_o = self.reference.halos(crit.t_boundary, crit.t_halo)
            cat_r = find_halos(rec, crit.t_boundary, crit.t_halo)
            cmp = compare_catalogs(cat_o, cat_r, max_distance=crit.halo_match_distance)
            halo_rmse = cmp.mass_rmse
            halo_dcount = cmp.count_change
            halo_ok = bool(
                np.isfinite(halo_rmse) and halo_rmse <= crit.halo_mass_rmse
            )

        err = error_summary(self.reference.f64, rec, moments=self._moments)
        return QualityReport(
            spectrum_ok=spectrum_ok,
            spectrum_worst_deviation=worst,
            halo_ok=halo_ok,
            halo_mass_rmse=halo_rmse,
            halo_count_change=halo_dcount,
            psnr_db=err.psnr_db,
            nrmse_value=err.nrmse_value,
        )
