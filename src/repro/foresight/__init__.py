"""Foresight-style evaluation toolkit (the paper's §4.1 harness).

VizAly-Foresight evaluates lossy compressors on cosmology data by
sweeping configurations, decompressing, and computing every metric of
interest.  This package rebuilds the workflow used in the paper's
experiments: configuration sweeps (:mod:`repro.foresight.sweep`),
acceptance criteria (:mod:`repro.foresight.quality`), the
reference-cached quality engine that amortizes original-field analyses
across trials (:mod:`repro.foresight.evaluator`) and plain-text / CSV
reports (:mod:`repro.foresight.report`).
"""

from repro.foresight.quality import QualityCriteria, QualityReport, evaluate_quality
from repro.foresight.evaluator import FieldReference, QualityEvaluator
from repro.foresight.sweep import SweepRecord, run_sweep
from repro.foresight.report import records_to_csv, records_to_table

__all__ = [
    "QualityCriteria",
    "QualityReport",
    "evaluate_quality",
    "FieldReference",
    "QualityEvaluator",
    "SweepRecord",
    "run_sweep",
    "records_to_csv",
    "records_to_table",
]
