"""Configuration sweeps: compress -> decompress -> analyze over a grid.

This is the broad-spectrum empirical methodology (Foresight) the paper
uses for ground truth and baselines.  Each record carries rate *and*
quality, so downstream code can pick operating points or validate the
models' predictions.

Rate-curve studies don't need the quality half (or even the compressed
bytes): ``rate_only=True`` skips decompression and quality evaluation,
and ``probe_mode="estimate"`` additionally skips the entropy codec,
reading each bit rate off the quantization-code histogram
(:mod:`repro.compression.estimator`) instead.  ``probe_mode="model"``
goes one step further: each ``(field, eb)`` cell gets a *predicted*
quality report from the closed-form ratio-quality engine
(:mod:`repro.models.rq_model`) — one batched quantization probe, no
compression, no decompression, no reconstruction analysis — with an
exact-confirmation knob (``confirm=``) that re-runs borderline cells
through the real pipeline.

Quality sweeps share one :class:`~repro.foresight.evaluator.QualityEvaluator`
per field, so the original-side analyses (``rfftn`` power spectrum, halo
catalog, metric moments) run exactly once per field no matter how many
error bounds are trialed.  The per-``(field, eb)`` evaluations are
independent, and ``backend=`` fans them out over the
:mod:`repro.parallel.backends` registry — ``"serial"`` (default
in-process loop), ``"thread"`` or ``"process"``; every backend returns
identical records.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.compression.api import (
    Compressor,
    CompressorSpec,
    capabilities_of,
    decompress_any,
    resolve_compressor,
    spec_of,
)
from repro.compression.sz import CompressedBlock
from repro.foresight.evaluator import FieldReference, QualityEvaluator
from repro.foresight.quality import QualityCriteria, QualityReport
from repro.models.rq_model import RQModel
from repro.parallel.backends import ExecutionBackend, get_backend
from repro.parallel.decomposition import BlockDecomposition

__all__ = ["SweepRecord", "run_sweep"]


@dataclass
class SweepRecord:
    """One (field, eb[, compressor]) evaluation.

    ``quality`` is ``None`` for rate-only records (no reconstruction was
    produced), in which case :attr:`passed` is ``None`` as well.
    ``spec`` names the compressor configuration behind the record when
    the sweep fanned over multiple families (``compressors=``); plain
    single-compressor sweeps leave it ``None``, keeping their records
    (and rendered tables/CSV) identical to the historical output.
    """

    field: str
    eb: float
    bit_rate: float
    ratio: float
    quality: QualityReport | None
    spec: CompressorSpec | None = None

    @property
    def passed(self) -> bool | None:
        return self.quality.passed if self.quality is not None else None


def _evaluate_chunk(
    task: tuple[QualityEvaluator, BlockDecomposition | None, list[tuple[int, list[CompressedBlock]]]],
) -> list[tuple[int, QualityReport]]:
    """Decompress and evaluate a chunk of one field's reconstructions.

    Module-level (and fed plain picklable data) so process backends can
    ship it to workers; the evaluator arrives with its reference caches
    already populated, so workers never re-analyze the original field.
    """
    evaluator, decomposition, chunk = task
    out = []
    for idx, blocks in chunk:
        if decomposition is not None:
            recon = decomposition.assemble([decompress_any(b) for b in blocks])
        else:
            recon = decompress_any(blocks[0])
        out.append((idx, evaluator.evaluate(recon)))
    return out


def _quality_reports(
    evaluator: QualityEvaluator,
    decomposition: BlockDecomposition | None,
    per_eb_blocks: list[list[CompressedBlock]],
    backend: ExecutionBackend,
) -> list[QualityReport]:
    """Fan every reconstruction's evaluation out over ``backend``.

    Items are chunked to one task per available worker, so the evaluator
    (whose pickled form carries the cached reference analyses) crosses a
    process boundary at most ``parallelism`` times per field.
    """
    items = list(enumerate(per_eb_blocks))
    n_chunks = min(len(items), backend.parallelism)
    bounds = np.linspace(0, len(items), n_chunks + 1).astype(int)
    chunks = [items[lo:hi] for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo]
    tasks = [(evaluator, decomposition, chunk) for chunk in chunks]
    reports: list[QualityReport | None] = [None] * len(items)
    for chunk_result in backend.map_tasks(_evaluate_chunk, tasks):
        for idx, report in chunk_result:
            reports[idx] = report
    return reports  # type: ignore[return-value]


def run_sweep(
    fields: dict[str, np.ndarray],
    ebs: Sequence[float],
    criteria: dict[str, QualityCriteria],
    decomposition: BlockDecomposition | None = None,
    compressor: "Compressor | CompressorSpec | str | None" = None,
    rate_only: bool = False,
    probe_mode: str = "exact",
    backend: str | ExecutionBackend | None = None,
    compressors: "Sequence[Compressor | CompressorSpec | str] | None" = None,
    confirm: str = "never",
) -> list[SweepRecord]:
    """Evaluate every (field, eb) — or (compressor, field, eb) — combination.

    Parameters
    ----------
    fields:
        Field name -> 3-D array.
    ebs:
        Error bounds to trial (absolute).  Fixed-rate families ignore
        them (their records repeat the configured rate per bound) but
        their *quality* still varies per field — which is the point of
        sweeping them.
    criteria:
        Field name -> acceptance criteria (fields without an entry use
        spectrum-only defaults).  Ignored when rates alone are swept.
    decomposition:
        If given, fields are compressed partition-wise (matching the in
        situ layout); otherwise whole-field.
    compressor:
        A single registry-resolvable compressor (instance, spec, spec
        string or ``None`` for the SZ default).
    rate_only:
        Skip decompression and quality evaluation; records carry
        ``quality=None``.
    probe_mode:
        ``"exact"`` (default) runs the full compressor; ``"estimate"``
        predicts rates from code histograms without running the entropy
        codec; ``"model"`` predicts rate *and* quality — each record's
        ``quality`` is the ratio-quality engine's predicted
        :class:`QualityReport` (predicted PSNR/NRMSE, predicted spectrum
        and halo verdicts), from one batched quantization probe per
        ``(field, eb)``.  Both codec-free modes require every swept
        compressor to declare the ``supports_estimate`` capability
        (:class:`~repro.compression.api.UnsupportedCapabilityError`
        otherwise); ``"estimate"`` sweeps are inherently rate-only.
    backend:
        Execution backend (registry name or instance) for the quality
        evaluations, which are independent per ``(field, eb)``.  ``None``
        (default) evaluates inline; a name is resolved via
        :func:`~repro.parallel.backends.get_backend` and closed on exit,
        while an instance is left open for the caller to manage.
    compressors:
        Fan the whole sweep over several compressor configurations (the
        family-ablation mode).  Mutually exclusive with ``compressor``;
        each record then carries the originating
        :class:`~repro.compression.api.CompressorSpec` in ``record.spec``.
    confirm:
        Exact-confirmation policy for ``probe_mode="model"``:
        ``"never"`` (default) trusts every prediction, ``"boundary"``
        re-runs cells whose predicted verdicts sit within
        :data:`~repro.models.rq_model.BOUNDARY_BAND_FACTOR` of a
        threshold through the real compress→decompress→analyze pipeline
        (replacing both the rate and the quality of that record with
        measurements), ``"always"`` confirms every cell (predictions
        become a cross-check only).
    """
    if not fields:
        raise ValueError("need at least one field")
    if len(ebs) == 0:
        raise ValueError("need at least one error bound")
    if probe_mode not in ("exact", "estimate", "model"):
        raise ValueError(
            f"probe_mode must be 'exact', 'estimate' or 'model', got {probe_mode!r}"
        )
    if confirm not in ("never", "boundary", "always"):
        raise ValueError(
            f"confirm must be 'never', 'boundary' or 'always', got {confirm!r}"
        )
    if confirm != "never" and probe_mode != "model":
        raise ValueError(
            'confirm applies only to probe_mode="model" '
            f"(got confirm={confirm!r} with probe_mode={probe_mode!r})"
        )
    if compressors is not None and compressor is not None:
        raise ValueError("pass either compressor or compressors, not both")
    if compressors is not None and not len(list(compressors)):
        raise ValueError("compressors must name at least one configuration")
    if probe_mode == "estimate":
        rate_only = True  # no payloads exist to decompress
    multi = compressors is not None
    comps = (
        [resolve_compressor(c) for c in compressors]
        if multi
        else [resolve_compressor(compressor)]
    )
    if probe_mode in ("estimate", "model"):
        for comp in comps:
            capabilities_of(comp).require(
                "supports_estimate",
                f'probe_mode="{probe_mode}" (codec-free quantization probing)',
                who=comp,
            )
    owns_backend = isinstance(backend, str)
    exec_backend = get_backend(backend) if backend is not None else None
    records: list[SweepRecord] = []
    # One lazily-built FieldReference per field, shared across every
    # compressor (and with the R-Q models), so the original-side
    # analyses run at most once per field per sweep — and not at all on
    # rate-only / estimate paths, which never touch a reference.
    refs: dict[str, FieldReference] = {}

    def field_ref(name: str, data: np.ndarray) -> FieldReference:
        if name not in refs:
            refs[name] = FieldReference(data)
        return refs[name]

    def batched_estimates(comp, views, eb):
        many = getattr(comp, "estimate_many", None)
        if callable(many):
            return many(views, [eb] * len(views))
        return [comp.estimate(v, eb) for v in views]

    try:
        for comp in comps:
            # Tag records with the spec only in multi-compressor mode, so
            # single-compressor sweeps keep their historical record shape.
            tag = spec_of(comp) if multi else None
            for name, data in fields.items():
                crit = criteria.get(name, QualityCriteria())
                views = (
                    decomposition.partition_views(data)
                    if decomposition is not None
                    else [data]
                )
                # Without real fan-out, evaluate each bound as soon as it
                # is compressed: buffering every bound's blocks would
                # multiply peak memory by len(ebs) for no scheduling
                # benefit.
                fan_out = exec_backend is not None and exec_backend.parallelism > 1
                evaluator: QualityEvaluator | None = None
                rq: RQModel | None = None
                rates: list[tuple[float, int, int, int]] = []  # (eb, nbytes, n, itemsize)
                per_eb_blocks: list[list[CompressedBlock]] = []
                qualities: list[QualityReport | None] = []
                for eb in ebs:
                    eb = float(eb)
                    quality: QualityReport | None = None
                    if probe_mode == "estimate":
                        ests = batched_estimates(comp, views, eb)
                        nbytes = sum(e.est_nbytes for e in ests)
                        n = sum(e.n_elements for e in ests)
                        itemsize = ests[0].source_itemsize
                    elif probe_mode == "model":
                        ests = batched_estimates(comp, views, eb)
                        nbytes = sum(e.est_nbytes for e in ests)
                        n = sum(e.n_elements for e in ests)
                        itemsize = ests[0].source_itemsize
                        if not rate_only:
                            if rq is None:
                                rq = RQModel(
                                    field_ref(name, data), crit, field=name
                                )
                            pred = rq.predict(eb, ests)
                            quality = pred.to_quality_report()
                            if confirm == "always" or (
                                confirm == "boundary" and pred.near_boundary(crit)
                            ):
                                blocks = [comp.compress(v, eb) for v in views]
                                nbytes = sum(b.nbytes for b in blocks)
                                n = sum(b.n_elements for b in blocks)
                                itemsize = blocks[0].source_itemsize
                                if evaluator is None:
                                    evaluator = QualityEvaluator(
                                        data, crit, reference=field_ref(name, data)
                                    )
                                (_, quality), = _evaluate_chunk(
                                    (evaluator, decomposition, [(0, blocks)])
                                )
                    else:
                        blocks = [comp.compress(v, eb) for v in views]
                        nbytes = sum(b.nbytes for b in blocks)
                        n = sum(b.n_elements for b in blocks)
                        itemsize = blocks[0].source_itemsize
                        if not rate_only:
                            if fan_out:
                                per_eb_blocks.append(blocks)
                            else:
                                if evaluator is None:
                                    evaluator = QualityEvaluator(
                                        data, crit, reference=field_ref(name, data)
                                    )
                                (_, quality), = _evaluate_chunk(
                                    (evaluator, decomposition, [(0, blocks)])
                                )
                    rates.append((eb, nbytes, n, itemsize))
                    qualities.append(quality)
                if per_eb_blocks:
                    evaluator = QualityEvaluator(
                        data, crit, reference=field_ref(name, data)
                    )
                    qualities = _quality_reports(
                        evaluator, decomposition, per_eb_blocks, exec_backend
                    )
                for (eb, nbytes, n, itemsize), quality in zip(rates, qualities):
                    records.append(
                        SweepRecord(
                            field=name,
                            eb=eb,
                            bit_rate=8.0 * nbytes / n,
                            ratio=itemsize * n / nbytes,
                            quality=quality,
                            spec=tag,
                        )
                    )
    finally:
        if owns_backend and exec_backend is not None:
            exec_backend.close()
    return records
