"""Configuration sweeps: compress -> decompress -> analyze over a grid.

This is the broad-spectrum empirical methodology (Foresight) the paper
uses for ground truth and baselines.  Each record carries rate *and*
quality, so downstream code can pick operating points or validate the
models' predictions.

Rate-curve studies don't need the quality half (or even the compressed
bytes): ``rate_only=True`` skips decompression and quality evaluation,
and ``probe_mode="estimate"`` additionally skips the entropy codec,
reading each bit rate off the quantization-code histogram
(:mod:`repro.compression.estimator`) instead.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.compression.sz import SZCompressor, decompress
from repro.foresight.quality import QualityCriteria, QualityReport, evaluate_quality
from repro.parallel.decomposition import BlockDecomposition

__all__ = ["SweepRecord", "run_sweep"]


@dataclass
class SweepRecord:
    """One (field, eb) evaluation.

    ``quality`` is ``None`` for rate-only records (no reconstruction was
    produced), in which case :attr:`passed` is ``None`` as well.
    """

    field: str
    eb: float
    bit_rate: float
    ratio: float
    quality: QualityReport | None

    @property
    def passed(self) -> bool | None:
        return self.quality.passed if self.quality is not None else None


def run_sweep(
    fields: dict[str, np.ndarray],
    ebs: Sequence[float],
    criteria: dict[str, QualityCriteria],
    decomposition: BlockDecomposition | None = None,
    compressor: SZCompressor | None = None,
    rate_only: bool = False,
    probe_mode: str = "exact",
) -> list[SweepRecord]:
    """Evaluate every (field, eb) combination.

    Parameters
    ----------
    fields:
        Field name -> 3-D array.
    ebs:
        Error bounds to trial (absolute).
    criteria:
        Field name -> acceptance criteria (fields without an entry use
        spectrum-only defaults).  Ignored when rates alone are swept.
    decomposition:
        If given, fields are compressed partition-wise (matching the in
        situ layout); otherwise whole-field.
    rate_only:
        Skip decompression and quality evaluation; records carry
        ``quality=None``.
    probe_mode:
        ``"exact"`` (default) runs the full compressor; ``"estimate"``
        predicts rates from code histograms without running the entropy
        codec — codec-free sweeps are inherently rate-only.
    """
    if not fields:
        raise ValueError("need at least one field")
    if not ebs:
        raise ValueError("need at least one error bound")
    if probe_mode not in ("exact", "estimate"):
        raise ValueError(
            f"probe_mode must be 'exact' or 'estimate', got {probe_mode!r}"
        )
    if probe_mode == "estimate":
        rate_only = True  # no payloads exist to decompress
    comp = compressor or SZCompressor()
    records: list[SweepRecord] = []
    for name, data in fields.items():
        crit = criteria.get(name, QualityCriteria())
        views = (
            decomposition.partition_views(data) if decomposition is not None else None
        )
        for eb in ebs:
            eb = float(eb)
            quality: QualityReport | None = None
            if probe_mode == "estimate":
                ests = [
                    comp.estimate(v, eb) for v in (views if views is not None else [data])
                ]
                nbytes = sum(e.est_nbytes for e in ests)
                n = sum(e.n_elements for e in ests)
                itemsize = ests[0].source_itemsize
            elif views is not None:
                blocks = [comp.compress(v, eb) for v in views]
                nbytes = sum(b.nbytes for b in blocks)
                n = sum(b.n_elements for b in blocks)
                itemsize = blocks[0].source_itemsize
                if not rate_only:
                    recon = decomposition.assemble([decompress(b) for b in blocks])
                    quality = evaluate_quality(data, recon, crit)
            else:
                block = comp.compress(data, eb)
                nbytes, n, itemsize = block.nbytes, block.n_elements, block.source_itemsize
                if not rate_only:
                    quality = evaluate_quality(data, decompress(block), crit)
            records.append(
                SweepRecord(
                    field=name,
                    eb=eb,
                    bit_rate=8.0 * nbytes / n,
                    ratio=itemsize * n / nbytes,
                    quality=quality,
                )
            )
    return records
