"""Configuration sweeps: compress -> decompress -> analyze over a grid.

This is the broad-spectrum empirical methodology (Foresight) the paper
uses for ground truth and baselines.  Each record carries rate *and*
quality, so downstream code can pick operating points or validate the
models' predictions.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.compression.sz import SZCompressor, decompress
from repro.foresight.quality import QualityCriteria, QualityReport, evaluate_quality
from repro.parallel.decomposition import BlockDecomposition

__all__ = ["SweepRecord", "run_sweep"]


@dataclass
class SweepRecord:
    """One (field, eb) evaluation."""

    field: str
    eb: float
    bit_rate: float
    ratio: float
    quality: QualityReport

    @property
    def passed(self) -> bool:
        return self.quality.passed


def run_sweep(
    fields: dict[str, np.ndarray],
    ebs: Sequence[float],
    criteria: dict[str, QualityCriteria],
    decomposition: BlockDecomposition | None = None,
    compressor: SZCompressor | None = None,
) -> list[SweepRecord]:
    """Evaluate every (field, eb) combination.

    Parameters
    ----------
    fields:
        Field name -> 3-D array.
    ebs:
        Error bounds to trial (absolute).
    criteria:
        Field name -> acceptance criteria (fields without an entry use
        spectrum-only defaults).
    decomposition:
        If given, fields are compressed partition-wise (matching the in
        situ layout); otherwise whole-field.
    """
    if not fields:
        raise ValueError("need at least one field")
    if not ebs:
        raise ValueError("need at least one error bound")
    comp = compressor or SZCompressor()
    records: list[SweepRecord] = []
    for name, data in fields.items():
        crit = criteria.get(name, QualityCriteria())
        for eb in ebs:
            eb = float(eb)
            if decomposition is not None:
                blocks = [comp.compress(v, eb) for v in decomposition.partition_views(data)]
                nbytes = sum(b.nbytes for b in blocks)
                n = sum(b.n_elements for b in blocks)
                itemsize = blocks[0].source_itemsize
                recon = decomposition.assemble([decompress(b) for b in blocks])
            else:
                block = comp.compress(data, eb)
                nbytes, n, itemsize = block.nbytes, block.n_elements, block.source_itemsize
                recon = decompress(block)
            quality = evaluate_quality(data, recon, crit)
            records.append(
                SweepRecord(
                    field=name,
                    eb=eb,
                    bit_rate=8.0 * nbytes / n,
                    ratio=itemsize * n / nbytes,
                    quality=quality,
                )
            )
    return records
