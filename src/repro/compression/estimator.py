"""Codec-free bit-rate estimation from quantization-code histograms.

Calibration (§3.5) and Foresight-style rate sweeps only need one scalar
per (partition, error bound): the entropy-coded size.  Paying the full
DEFLATE/Huffman stage to read it off is wasteful — the follow-up
ratio-quality modeling work (Jin et al., "Improving Prediction-Based
Lossy Compression Dramatically via Ratio-Quality Modeling") shows the
coded size is predictable from the quantization-code *histogram* alone.
This module implements that prediction, specialized per entropy stage:

``zlib``
    DEFLATE Huffman-codes the *bytes* of the narrowed code stream, so
    the size tracks the sum of per-byte-plane marginal entropies (both
    derivable from the symbol histogram), corrected by an empirically
    calibrated efficiency curve: DEFLATE beats the marginal-entropy
    model at low entropies (LZ77 run matching) and falls short of it at
    high entropies (semi-static per-block trees, literal/length
    alphabet overhead), capping at 8 bits/byte (stored blocks).

``huffman``
    The canonical-Huffman + zlib stack lands at the *symbol* entropy:
    Huffman's integer-length overhead is recovered by the trailing zlib
    pass, which also squeezes a few percent more out of low-entropy
    streams.  A table-serialization cost proportional to the number of
    used symbols is charged on top (it matters for small partitions).

``raw``
    Exact by construction: one dtype tag plus ``n * itemsize`` bytes.

Non-empty payloads are charged a small fixed container overhead, the
outlier channel its stored width per outlier, plus the fixed per-block
:data:`HEADER_BYTES` header.  Accuracy against the exact ``bit_rate``
is pinned by ``tests/compression/test_estimator.py`` for the regime the
estimator is calibrated for: blocks of **>= ~4096 values** (16^3 — the
smallest calibration partition in use; the paper's are 64^3).  Below
that, DEFLATE's per-stream adaptivity overhead dominates and estimates
degrade to the +-20% level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "HEADER_BYTES",
    "PAYLOAD_CONTAINER_BYTES",
    "OUTLIER_BYTES",
    "RateEstimate",
    "code_histogram",
    "shannon_bits_per_value",
    "byte_plane_bits",
    "estimate_code_bits",
    "estimate_nbytes",
]

# Fixed per-block header cost charged to every compressed block: shape,
# dtype tag, eb, mode/engine/codec tags, payload lengths.  Charged so
# compression ratios are honest about metadata (SZ's own header is of
# this order).  Lives here (the leaf module) so the compressor and the
# estimator charge the identical constant.
HEADER_BYTES = 32

#: Approximate fixed cost of one non-empty entropy-coded payload: the
#: 1-byte dtype tag plus the zlib container (2-byte header, 4-byte
#: Adler-32) and deflate block framing.
PAYLOAD_CONTAINER_BYTES = 12

#: Legacy stored bytes per outlier (int64 position + int64 value).
#: Kept exported for callers that budget conservatively; the estimator
#: itself now charges the narrowed position width the compressor
#: actually serializes (8 value bytes + minimal position itemsize).
OUTLIER_BYTES = 16

#: DEFLATE efficiency vs. byte-plane marginal entropy (bits/byte),
#: calibrated at compression level 6 against GRF and Nyx-proxy code
#: streams (whole fields and 16^3 partitions):
#: ``coded_size ~= interp(h) * marginal_entropy_size + tree_cost``.
_DEFLATE_EFF_H = np.array(
    [0.0, 0.1, 0.2, 0.3, 0.45, 0.6, 0.8, 1.0, 1.25, 1.5,
     1.8, 2.1, 2.4, 2.8, 3.2, 3.6, 4.0, 4.5, 5.0, 5.7, 6.5, 8.0]
)
_DEFLATE_EFF_G = np.array(
    [0.55, 0.62, 0.68, 0.73, 0.82, 0.86, 0.89, 0.93, 0.96, 0.99,
     1.01, 1.05, 1.06, 1.09, 1.11, 1.10, 1.13, 1.19, 1.19, 1.14, 1.08, 1.0]
)

#: DEFLATE re-describes its dynamic Huffman trees (and restarts its
#: adaptivity) roughly once per 64 KiB input chunk; each chunk costs a
#: base plus ~2.5 bytes per distinct byte value, saturating at a
#: fraction of the chunk's entropy content (deflate falls back to
#: fixed/stored blocks rather than paying an oversized tree).
#: Negligible for whole fields, but the dominant correction for small
#: (e.g. 16^3) calibration partitions.
_DEFLATE_CHUNK_BYTES = 65536
_DEFLATE_TREE_BASE = 10.0
_DEFLATE_TREE_PER_BYTE_SYMBOL = 3.0
_DEFLATE_TREE_CAP_FRACTION = 0.35
_DEFLATE_TREE_CAP_BASE = 50.0

#: Gain of the zlib pass trailing the canonical Huffman encoder vs. the
#: symbol entropy, as a function of that entropy (bits/value): leftover
#: correlation in low-entropy streams compresses a few percent further.
_HUFF_ZLIB_H = np.array([0.0, 0.2, 0.5, 1.0, 2.0, 3.0, 4.0])
_HUFF_ZLIB_G = np.array([0.89, 0.89, 0.91, 0.95, 0.97, 1.0, 1.0])

#: Linear model of the serialized (zlib'd) Huffman code-length table:
#: ``bytes ~= _HUFF_TABLE_BASE + _HUFF_TABLE_PER_SYMBOL * n_used``.
_HUFF_TABLE_BASE = 56.0
_HUFF_TABLE_PER_SYMBOL = 0.35


@dataclass(frozen=True)
class RateEstimate:
    """Predicted size of one compressed block, without running a codec."""

    n_elements: int
    source_itemsize: int
    n_outliers: int
    code_bits_per_value: float  # predicted entropy-stage bits/value
    est_nbytes: float  # total predicted block size (header included)

    @property
    def bit_rate(self) -> float:
        """Predicted average bits stored per value."""
        return 8.0 * self.est_nbytes / self.n_elements

    @property
    def ratio(self) -> float:
        """Predicted compression ratio vs. the uncompressed source."""
        return self.source_itemsize * self.n_elements / self.est_nbytes


def code_histogram(codes: np.ndarray, radius: int) -> np.ndarray:
    """Symbol frequencies of the bounded quantization codes.

    ``minlength=2*radius`` so the histogram always spans the full code
    alphabet ``[0, 2*radius)`` regardless of which symbols occur.

    The estimation functions below also accept *compact* histograms — a
    slice of the full one starting at symbol ``offset`` — so hot callers
    can bin only the occupied code range (see ``hist_offset``).
    """
    return np.bincount(codes.reshape(-1), minlength=2 * radius)


def shannon_bits_per_value(hist: np.ndarray) -> float:
    """Empirical Shannon entropy of the symbol histogram (bits/value)."""
    counts = hist[hist > 0]
    n = counts.sum()
    if n == 0 or counts.size <= 1:
        return 0.0
    p = counts / n
    return float(-(p * np.log2(p)).sum())


def _minimal_itemsize(max_symbol: int) -> int:
    """Bytes per code in the narrowed stream the codec actually sees."""
    if max_symbol <= 0xFF:
        return 1
    if max_symbol <= 0xFFFF:
        return 2
    if max_symbol <= 0xFFFFFFFF:
        return 4
    return 8


def byte_plane_bits(hist: np.ndarray, hist_offset: int = 0) -> tuple[float, int, int]:
    """Sum of per-byte-plane marginal entropies of the narrowed codes.

    Returns ``(bits_per_value, itemsize, distinct_byte_values)``.
    Derived from the symbol histogram alone: plane ``k`` of symbol ``s``
    is ``(s >> 8k) & 0xFF``, so each plane's byte histogram is a
    weighted regrouping of the symbol frequencies.  This is the quantity
    DEFLATE's literal coding responds to — a 16-bit symbol stream is two
    interleaved byte streams to it.  ``hist_offset`` shifts compact
    histograms back to true symbol values (bin ``i`` counts symbol
    ``i + hist_offset``).
    """
    syms = np.flatnonzero(hist)
    if syms.size == 0:
        return 0.0, 1, 0
    freqs = hist[syms].astype(np.float64)
    if hist_offset:
        syms = syms + hist_offset
    itemsize = _minimal_itemsize(int(syms[-1]))
    total = 0.0
    distinct = 0
    for k in range(itemsize):
        plane = ((syms >> (8 * k)) & 0xFF).astype(np.intp)
        plane_hist = np.bincount(plane, weights=freqs, minlength=256)
        total += shannon_bits_per_value(plane_hist)
        distinct += int((plane_hist > 0).sum())
    return total, itemsize, distinct


def estimate_code_bits(
    hist: np.ndarray, codec_name: str = "zlib", hist_offset: int = 0
) -> float:
    """Predicted entropy-stage bits per value for the code stream.

    ``hist`` may be compact (bin ``i`` = symbol ``i + hist_offset``).
    """
    hist = np.asarray(hist)
    n = int(hist.sum())
    if n == 0:
        return 0.0
    if codec_name == "raw":
        syms = np.flatnonzero(hist)
        top = (int(syms[-1]) + hist_offset) if syms.size else 0
        return 8.0 * _minimal_itemsize(top)
    if codec_name == "huffman":
        h = shannon_bits_per_value(hist)
        gain = float(np.interp(h, _HUFF_ZLIB_H, _HUFF_ZLIB_G))
        n_used = int((hist > 0).sum())
        table_bits = 8.0 * (_HUFF_TABLE_BASE + _HUFF_TABLE_PER_SYMBOL * n_used) / n
        return h * gain + table_bits
    # zlib / DEFLATE (also the fallback for unknown codecs: every
    # entropy stage in this library is deflate-backed).
    hb, itemsize, distinct = byte_plane_bits(hist, hist_offset)
    h_per_byte = hb / itemsize
    eff = float(np.interp(h_per_byte, _DEFLATE_EFF_H, _DEFLATE_EFF_G))
    chunks = max(1.0, np.ceil(n * itemsize / _DEFLATE_CHUNK_BYTES))
    ent_bytes = hb / 8.0 * n
    tree_per_chunk = min(
        _DEFLATE_TREE_BASE + _DEFLATE_TREE_PER_BYTE_SYMBOL * distinct,
        _DEFLATE_TREE_CAP_FRACTION * ent_bytes / chunks + _DEFLATE_TREE_CAP_BASE,
    )
    return min(eff * hb + 8.0 * chunks * tree_per_chunk / n, 8.06 * itemsize)


def estimate_nbytes(
    hist: np.ndarray,
    n_elements: int,
    n_outliers: int,
    codec_name: str = "zlib",
    *,
    header_bytes: int = HEADER_BYTES,
    hist_offset: int = 0,
) -> tuple[float, float]:
    """Predict a block's total stored size from its code histogram.

    Returns ``(est_nbytes, code_bits_per_value)``.  The layout charged
    mirrors :class:`repro.compression.sz.CompressedBlock`: header +
    entropy-coded codes + outlier positions/values (empty outlier
    channels cost nothing, matching the compressor's empty-payload
    short-circuit).  ``hist`` may be compact (see ``hist_offset``).
    """
    if n_elements <= 0:
        raise ValueError("n_elements must be positive")
    if n_outliers < 0:
        raise ValueError("n_outliers must be non-negative")
    bits = estimate_code_bits(hist, codec_name, hist_offset)
    total = float(header_bytes)
    total += n_elements * bits / 8.0 + PAYLOAD_CONTAINER_BYTES
    if n_outliers:
        # Positions are narrowed to the smallest uint covering the block
        # (plus a 1-byte width tag on the channel); values stay 8 bytes.
        pos_itemsize = _minimal_itemsize(max(n_elements - 1, 0))
        total += n_outliers * (8 + pos_itemsize) + 1 + 2 * PAYLOAD_CONTAINER_BYTES
    return total, bits
