"""Codec-free bit-rate estimation from quantization-code histograms.

Calibration (§3.5) and Foresight-style rate sweeps only need one scalar
per (partition, error bound): the entropy-coded size.  Paying the full
DEFLATE/Huffman stage to read it off is wasteful — the follow-up
ratio-quality modeling work (Jin et al., "Improving Prediction-Based
Lossy Compression Dramatically via Ratio-Quality Modeling") shows the
coded size is predictable from the quantization-code *histogram* alone.
This module implements that prediction, specialized per entropy stage:

``zlib``
    DEFLATE Huffman-codes the *bytes* of the narrowed code stream, so
    the size tracks the sum of per-byte-plane marginal entropies (both
    derivable from the symbol histogram), corrected by an empirically
    calibrated efficiency curve: DEFLATE beats the marginal-entropy
    model at low entropies (LZ77 run matching) and falls short of it at
    high entropies (semi-static per-block trees, literal/length
    alphabet overhead), capping at 8 bits/byte (stored blocks).

``huffman``
    The canonical-Huffman + zlib stack lands at the *symbol* entropy:
    Huffman's integer-length overhead is recovered by the trailing zlib
    pass, which also squeezes a few percent more out of low-entropy
    streams.  A table-serialization cost proportional to the number of
    used symbols is charged on top (it matters for small partitions).

``raw``
    Exact by construction: one dtype tag plus ``n * itemsize`` bytes.

Non-empty payloads are charged a small fixed container overhead, the
outlier channel its stored width per outlier, plus the fixed per-block
:data:`HEADER_BYTES` header.  Accuracy against the exact ``bit_rate``
is pinned by ``tests/compression/test_estimator.py`` for the regime the
estimator is calibrated for: blocks of **>= ~4096 values** (16^3 — the
smallest calibration partition in use; the paper's are 64^3).  Below
that, DEFLATE's per-stream adaptivity overhead dominates and estimates
degrade to the +-20% level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "HEADER_BYTES",
    "PAYLOAD_CONTAINER_BYTES",
    "OUTLIER_BYTES",
    "UNIFORM_MSE_FACTOR",
    "RateEstimate",
    "RQEstimate",
    "code_census",
    "code_census_rows",
    "code_histogram",
    "shannon_bits_per_value",
    "byte_plane_bits",
    "byte_plane_bits_sparse",
    "estimate_code_bits",
    "estimate_code_bits_sparse",
    "estimate_nbytes",
    "estimate_nbytes_rows",
    "estimate_nbytes_sparse",
    "predicted_quantization_mse",
    "predicted_psnr_db",
    "predicted_nrmse",
]

# Fixed per-block header cost charged to every compressed block: shape,
# dtype tag, eb, mode/engine/codec tags, payload lengths.  Charged so
# compression ratios are honest about metadata (SZ's own header is of
# this order).  Lives here (the leaf module) so the compressor and the
# estimator charge the identical constant.
HEADER_BYTES = 32

#: Approximate fixed cost of one non-empty entropy-coded payload: the
#: 1-byte dtype tag plus the zlib container (2-byte header, 4-byte
#: Adler-32) and deflate block framing.
PAYLOAD_CONTAINER_BYTES = 12

#: Legacy stored bytes per outlier (int64 position + int64 value).
#: Kept exported for callers that budget conservatively; the estimator
#: itself now charges the narrowed position width the compressor
#: actually serializes (8 value bytes + minimal position itemsize).
OUTLIER_BYTES = 16

#: DEFLATE efficiency vs. byte-plane marginal entropy (bits/byte),
#: calibrated at compression level 6 against GRF and Nyx-proxy code
#: streams (whole fields and 16^3 partitions):
#: ``coded_size ~= interp(h) * marginal_entropy_size + tree_cost``.
_DEFLATE_EFF_H = np.array(
    [0.0, 0.1, 0.2, 0.3, 0.45, 0.6, 0.8, 1.0, 1.25, 1.5,
     1.8, 2.1, 2.4, 2.8, 3.2, 3.6, 4.0, 4.5, 5.0, 5.7, 6.5, 8.0]
)
_DEFLATE_EFF_G = np.array(
    [0.55, 0.62, 0.68, 0.73, 0.82, 0.86, 0.89, 0.93, 0.96, 0.99,
     1.01, 1.05, 1.06, 1.09, 1.11, 1.10, 1.13, 1.19, 1.19, 1.14, 1.08, 1.0]
)

#: DEFLATE re-describes its dynamic Huffman trees (and restarts its
#: adaptivity) roughly once per 64 KiB input chunk; each chunk costs a
#: base plus ~2.5 bytes per distinct byte value, saturating at a
#: fraction of the chunk's entropy content (deflate falls back to
#: fixed/stored blocks rather than paying an oversized tree).
#: Negligible for whole fields, but the dominant correction for small
#: (e.g. 16^3) calibration partitions.
_DEFLATE_CHUNK_BYTES = 65536
_DEFLATE_TREE_BASE = 10.0
_DEFLATE_TREE_PER_BYTE_SYMBOL = 3.0
_DEFLATE_TREE_CAP_FRACTION = 0.35
_DEFLATE_TREE_CAP_BASE = 50.0

#: Gain of the zlib pass trailing the canonical Huffman encoder vs. the
#: symbol entropy, as a function of that entropy (bits/value): leftover
#: correlation in low-entropy streams compresses a few percent further.
_HUFF_ZLIB_H = np.array([0.0, 0.2, 0.5, 1.0, 2.0, 3.0, 4.0])
_HUFF_ZLIB_G = np.array([0.89, 0.89, 0.91, 0.95, 0.97, 1.0, 1.0])

#: Linear model of the serialized (zlib'd) Huffman code-length table:
#: ``bytes ~= _HUFF_TABLE_BASE + _HUFF_TABLE_PER_SYMBOL * n_used``.
_HUFF_TABLE_BASE = 56.0
_HUFF_TABLE_PER_SYMBOL = 0.35


#: Per-point error variance of ``U[-eb, eb]`` in units of ``eb**2``
#: (:class:`repro.models.error_distribution.UniformErrorModel` squared).
UNIFORM_MSE_FACTOR = 1.0 / 3.0


@dataclass(frozen=True)
class RateEstimate:
    """Predicted size of one compressed block, without running a codec."""

    n_elements: int
    source_itemsize: int
    n_outliers: int
    code_bits_per_value: float  # predicted entropy-stage bits/value
    est_nbytes: float  # total predicted block size (header included)

    @property
    def bit_rate(self) -> float:
        """Predicted average bits stored per value."""
        return 8.0 * self.est_nbytes / self.n_elements

    @property
    def ratio(self) -> float:
        """Predicted compression ratio vs. the uncompressed source."""
        return self.source_itemsize * self.n_elements / self.est_nbytes


def predicted_quantization_mse(
    n_elements: int,
    n_outliers: int,
    eb: float,
    std_factor: float | None = None,
) -> float:
    """Predicted reconstruction MSE from quantization statistics alone.

    Quantized points carry error ~``U[-eb, eb]`` (variance ``eb**2/3``,
    the §3.2 uniform model); outliers are stored exactly and contribute
    nothing.  ``std_factor`` overrides the per-point error std in units
    of ``eb`` (default ``sqrt(1/3)``) for the §3.5 revised distribution.
    """
    if n_elements <= 0:
        raise ValueError("n_elements must be positive")
    if not 0 <= n_outliers <= n_elements:
        raise ValueError("n_outliers must be in [0, n_elements]")
    var = eb * eb * (UNIFORM_MSE_FACTOR if std_factor is None else std_factor**2)
    return float((n_elements - n_outliers) / n_elements * var)


def predicted_psnr_db(mse: float, value_range: float) -> float:
    """PSNR (dB) from a predicted MSE and the original's value range.

    The same formula :func:`repro.analysis.metrics.error_summary` applies
    to the measured error; zero MSE (or a degenerate constant field)
    predicts infinite PSNR, matching the measured-path convention.
    """
    if mse < 0:
        raise ValueError("mse must be non-negative")
    if mse == 0 or value_range <= 0:
        return float("inf")
    return float(20.0 * np.log10(value_range) - 10.0 * np.log10(mse))


def predicted_nrmse(mse: float, value_range: float) -> float:
    """NRMSE from a predicted MSE and the original's value range."""
    if mse < 0:
        raise ValueError("mse must be non-negative")
    if mse == 0 or value_range <= 0:
        return 0.0
    return float(np.sqrt(mse) / value_range)


@dataclass(frozen=True)
class RQEstimate(RateEstimate):
    """A :class:`RateEstimate` extended with predicted quality.

    One quantization-statistics probe yields both halves of the
    ratio-quality trade (Jin et al.'s R-Q modeling follow-up): the rate
    fields inherited from :class:`RateEstimate` plus a closed-form
    distortion prediction from the outlier census and the uniform error
    model — no Lorenzo decode, no entropy codec, no decompression.
    """

    eb: float  #: absolute error bound the probe quantized at
    value_range: float  #: original min-max range (PSNR/NRMSE normalizer)
    predicted_mse: float  #: closed-form MSE (uniform model, outliers exact)

    @property
    def predicted_psnr_db(self) -> float:
        """Predicted PSNR in dB against the probed original."""
        return predicted_psnr_db(self.predicted_mse, self.value_range)

    @property
    def predicted_nrmse(self) -> float:
        """Predicted range-normalized RMS error."""
        return predicted_nrmse(self.predicted_mse, self.value_range)


def code_histogram(codes: np.ndarray, radius: int) -> np.ndarray:
    """Symbol frequencies of the bounded quantization codes.

    ``minlength=2*radius`` so the histogram always spans the full code
    alphabet ``[0, 2*radius)`` regardless of which symbols occur.

    The estimation functions below also accept *compact* histograms — a
    slice of the full one starting at symbol ``offset`` — so hot callers
    can bin only the occupied code range (see ``hist_offset``).
    """
    return np.bincount(codes.reshape(-1), minlength=2 * radius)


def shannon_bits_per_value(hist: np.ndarray) -> float:
    """Empirical Shannon entropy of the symbol histogram (bits/value)."""
    counts = hist[hist > 0]
    n = counts.sum()
    if n == 0 or counts.size <= 1:
        return 0.0
    p = counts / n
    return float(-(p * np.log2(p)).sum())


def _minimal_itemsize(max_symbol: int) -> int:
    """Bytes per code in the narrowed stream the codec actually sees."""
    if max_symbol <= 0xFF:
        return 1
    if max_symbol <= 0xFFFF:
        return 2
    if max_symbol <= 0xFFFFFFFF:
        return 4
    return 8


def code_census(codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(symbols, counts)`` of a code stream, sorted by symbol.

    The sparse analogue of :func:`code_histogram`: ``O(n log n)`` in the
    stream length instead of ``O(symbol span)``, which is what the hot
    probe path wants — at tight bounds a 16^3 partition's residual codes
    can span 1e5+ values, making dense histogram passes (build, scan,
    regroup) cost 25x the stream itself.
    """
    return np.unique(np.reshape(codes, -1), return_counts=True)


def byte_plane_bits(hist: np.ndarray, hist_offset: int = 0) -> tuple[float, int, int]:
    """Sum of per-byte-plane marginal entropies of the narrowed codes.

    Returns ``(bits_per_value, itemsize, distinct_byte_values)``.
    Derived from the symbol histogram alone: plane ``k`` of symbol ``s``
    is ``(s >> 8k) & 0xFF``, so each plane's byte histogram is a
    weighted regrouping of the symbol frequencies.  This is the quantity
    DEFLATE's literal coding responds to — a 16-bit symbol stream is two
    interleaved byte streams to it.  ``hist_offset`` shifts compact
    histograms back to true symbol values (bin ``i`` counts symbol
    ``i + hist_offset``).
    """
    syms = np.flatnonzero(hist)
    if syms.size == 0:
        return 0.0, 1, 0
    freqs = hist[syms].astype(np.float64)
    if hist_offset:
        syms = syms + hist_offset
    return byte_plane_bits_sparse(syms, freqs)


def byte_plane_bits_sparse(
    syms: np.ndarray, counts: np.ndarray
) -> tuple[float, int, int]:
    """:func:`byte_plane_bits` from a sparse ``(symbols, counts)`` census.

    ``syms`` must be sorted ascending (as :func:`code_census` returns);
    only the occupied symbols are touched, so the cost is independent of
    the code span.
    """
    if len(syms) == 0:
        return 0.0, 1, 0
    syms = np.asarray(syms)
    freqs = np.asarray(counts, dtype=np.float64)
    itemsize = _minimal_itemsize(int(syms[-1]))
    total = 0.0
    distinct = 0
    for k in range(itemsize):
        plane = ((syms >> (8 * k)) & 0xFF).astype(np.intp)
        plane_hist = np.bincount(plane, weights=freqs, minlength=256)
        total += shannon_bits_per_value(plane_hist)
        distinct += int((plane_hist > 0).sum())
    return total, itemsize, distinct


def estimate_code_bits(
    hist: np.ndarray, codec_name: str = "zlib", hist_offset: int = 0
) -> float:
    """Predicted entropy-stage bits per value for the code stream.

    ``hist`` may be compact (bin ``i`` = symbol ``i + hist_offset``).
    """
    hist = np.asarray(hist)
    syms = np.flatnonzero(hist)
    counts = hist[syms]
    if hist_offset:
        syms = syms + hist_offset
    return estimate_code_bits_sparse(syms, counts, codec_name)


def estimate_code_bits_sparse(
    syms: np.ndarray, counts: np.ndarray, codec_name: str = "zlib"
) -> float:
    """:func:`estimate_code_bits` from a sparse ``(symbols, counts)``
    census (sorted by symbol, as :func:`code_census` returns)."""
    counts = np.asarray(counts, dtype=np.float64)
    n = float(counts.sum())
    if n == 0:
        return 0.0
    if codec_name == "raw":
        top = int(syms[-1]) if len(syms) else 0
        return 8.0 * _minimal_itemsize(top)
    if codec_name == "huffman":
        p = counts / n
        h = float(-(p * np.log2(p)).sum())
        gain = float(np.interp(h, _HUFF_ZLIB_H, _HUFF_ZLIB_G))
        table_bits = 8.0 * (_HUFF_TABLE_BASE + _HUFF_TABLE_PER_SYMBOL * len(syms)) / n
        return h * gain + table_bits
    # zlib / DEFLATE (also the fallback for unknown codecs: every
    # entropy stage in this library is deflate-backed).
    hb, itemsize, distinct = byte_plane_bits_sparse(syms, counts)
    h_per_byte = hb / itemsize
    eff = float(np.interp(h_per_byte, _DEFLATE_EFF_H, _DEFLATE_EFF_G))
    chunks = max(1.0, np.ceil(n * itemsize / _DEFLATE_CHUNK_BYTES))
    ent_bytes = hb / 8.0 * n
    tree_per_chunk = min(
        _DEFLATE_TREE_BASE + _DEFLATE_TREE_PER_BYTE_SYMBOL * distinct,
        _DEFLATE_TREE_CAP_FRACTION * ent_bytes / chunks + _DEFLATE_TREE_CAP_BASE,
    )
    return min(eff * hb + 8.0 * chunks * tree_per_chunk / n, 8.06 * itemsize)


def estimate_nbytes(
    hist: np.ndarray,
    n_elements: int,
    n_outliers: int,
    codec_name: str = "zlib",
    *,
    header_bytes: int = HEADER_BYTES,
    hist_offset: int = 0,
) -> tuple[float, float]:
    """Predict a block's total stored size from its code histogram.

    Returns ``(est_nbytes, code_bits_per_value)``.  The layout charged
    mirrors :class:`repro.compression.sz.CompressedBlock`: header +
    entropy-coded codes + outlier positions/values (empty outlier
    channels cost nothing, matching the compressor's empty-payload
    short-circuit).  ``hist`` may be compact (see ``hist_offset``).
    """
    if n_elements <= 0:
        raise ValueError("n_elements must be positive")
    if n_outliers < 0:
        raise ValueError("n_outliers must be non-negative")
    bits = estimate_code_bits(hist, codec_name, hist_offset)
    return _nbytes_from_bits(bits, n_elements, n_outliers, header_bytes), bits


def estimate_nbytes_sparse(
    syms: np.ndarray,
    counts: np.ndarray,
    n_elements: int,
    n_outliers: int,
    codec_name: str = "zlib",
    *,
    header_bytes: int = HEADER_BYTES,
) -> tuple[float, float]:
    """:func:`estimate_nbytes` from a sparse ``(symbols, counts)`` census
    (see :func:`code_census`) — the hot-probe entry point whose cost is
    independent of the code span."""
    if n_elements <= 0:
        raise ValueError("n_elements must be positive")
    if n_outliers < 0:
        raise ValueError("n_outliers must be non-negative")
    bits = estimate_code_bits_sparse(syms, counts, codec_name)
    return _nbytes_from_bits(bits, n_elements, n_outliers, header_bytes), bits


def code_census_rows(
    codes: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-row sparse census of a ``(B, n)`` code matrix.

    Returns ``(symbols, counts, row_ids)`` — the concatenation of every
    row's :func:`code_census`, with ``row_ids`` mapping each entry back
    to its row.  **Sorts the rows of ``codes`` in place** (callers pass
    a workspace view they own); one group-wide sort plus a handful of
    flat passes replaces ``B`` interpreter round-trips.
    """
    if codes.ndim != 2:
        raise ValueError(f"expected a (B, n) code matrix, got {codes.ndim}-D")
    n = codes.shape[1]
    codes.sort(axis=1)
    flat = codes.reshape(-1)
    start = np.empty(flat.size, dtype=bool)
    start[0] = True
    np.not_equal(flat[1:], flat[:-1], out=start[1:])
    start[::n] = True  # a run never spans a row boundary
    pos = np.flatnonzero(start)
    counts = np.diff(pos, append=flat.size)
    return flat[pos], counts, pos // n


def estimate_nbytes_rows(
    codes: np.ndarray,
    n_outliers: np.ndarray,
    codec_name: str = "zlib",
    *,
    header_bytes: int = HEADER_BYTES,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched :func:`estimate_nbytes` over the rows of a ``(B, n)``
    code matrix (sorted in place — see :func:`code_census_rows`).

    Returns ``(est_nbytes (B,), code_bits_per_value (B,))``.  This is
    the probe-side analogue of the batched compression kernels: the
    whole group's size predictions come from one census and a few
    group-wide reductions, so probing 64 partitions costs barely more
    than probing one.
    """
    n_rows, n = codes.shape
    syms, counts, row_ids = code_census_rows(codes)
    counts_f = counts.astype(np.float64)
    nf = float(n)
    row_max = codes[:, -1]  # rows are now sorted ascending
    itemsize = np.select(
        [row_max <= 0xFF, row_max <= 0xFFFF, row_max <= 0xFFFFFFFF],
        [1, 2, 4],
        8,
    )
    if codec_name == "raw":
        bits = 8.0 * itemsize.astype(np.float64)
    elif codec_name == "huffman":
        # -sum(p log2 p) == log2 n - sum(c log2 c)/n; counts >= 1 so the
        # log never sees zero.
        sum_clog = np.bincount(
            row_ids, weights=counts_f * np.log2(counts_f), minlength=n_rows
        )
        h = np.log2(nf) - sum_clog / nf
        gain = np.interp(h, _HUFF_ZLIB_H, _HUFF_ZLIB_G)
        n_used = np.bincount(row_ids, minlength=n_rows)
        bits = h * gain + 8.0 * (
            _HUFF_TABLE_BASE + _HUFF_TABLE_PER_SYMBOL * n_used
        ) / nf
    else:
        # zlib / DEFLATE: per-byte-plane marginal entropies, summed over
        # each row's narrowed width.
        hb = np.zeros(n_rows)
        distinct = np.zeros(n_rows, dtype=np.int64)
        for k in range(int(itemsize.max())):
            active = itemsize > k
            m = active[row_ids]
            key = row_ids[m] * 256 + ((syms[m] >> (8 * k)) & 0xFF)
            plane = np.bincount(
                key, weights=counts_f[m], minlength=n_rows * 256
            ).reshape(n_rows, 256)
            occupied = plane > 0
            clog = np.where(
                occupied, plane * np.log2(np.maximum(plane, 1.0)), 0.0
            )
            ent = np.log2(nf) - clog.sum(axis=1) / nf
            hb += np.where(active, ent, 0.0)
            distinct += np.where(active, occupied.sum(axis=1), 0)
        h_per_byte = hb / itemsize
        eff = np.interp(h_per_byte, _DEFLATE_EFF_H, _DEFLATE_EFF_G)
        chunks = np.maximum(1.0, np.ceil(nf * itemsize / _DEFLATE_CHUNK_BYTES))
        ent_bytes = hb / 8.0 * nf
        tree_per_chunk = np.minimum(
            _DEFLATE_TREE_BASE + _DEFLATE_TREE_PER_BYTE_SYMBOL * distinct,
            _DEFLATE_TREE_CAP_FRACTION * ent_bytes / chunks + _DEFLATE_TREE_CAP_BASE,
        )
        bits = np.minimum(
            eff * hb + 8.0 * chunks * tree_per_chunk / nf, 8.06 * itemsize
        )
    n_out = np.asarray(n_outliers)
    total = header_bytes + nf * bits / 8.0 + PAYLOAD_CONTAINER_BYTES
    pos_itemsize = _minimal_itemsize(max(n - 1, 0))
    total = total + np.where(
        n_out > 0,
        n_out * (8 + pos_itemsize) + 1 + 2 * PAYLOAD_CONTAINER_BYTES,
        0.0,
    )
    return total, bits


def _nbytes_from_bits(
    bits: float, n_elements: int, n_outliers: int, header_bytes: int
) -> float:
    total = float(header_bytes)
    total += n_elements * bits / 8.0 + PAYLOAD_CONTAINER_BYTES
    if n_outliers:
        # Positions are narrowed to the smallest uint covering the block
        # (plus a 1-byte width tag on the channel); values stay 8 bytes.
        pos_itemsize = _minimal_itemsize(max(n_elements - 1, 0))
        total += n_outliers * (8 + pos_itemsize) + 1 + 2 * PAYLOAD_CONTAINER_BYTES
    return total
