"""Error-bounded lossy compression substrate (SZ-like, from scratch).

The paper compresses Nyx fields with SZ/cuSZ.  This package rebuilds that
pipeline in vectorized NumPy:

- :mod:`repro.compression.lorenzo` — the Lorenzo predictor as an
  invertible integer transform (n-fold mixed first difference),
- :mod:`repro.compression.quantizer` — linear-scaling dual quantization
  with ABS and PW_REL error-bound modes plus an outlier channel,
- :mod:`repro.compression.huffman` — canonical Huffman coding with a
  vectorized encoder and table-driven decoder,
- :mod:`repro.compression.codecs` — pluggable entropy stages (Huffman,
  zlib/DEFLATE, raw),
- :mod:`repro.compression.sz` — the assembled error-bounded compressor,
- :mod:`repro.compression.workspace` — reusable scratch arenas for the
  fused, allocation-lean kernel path,
- :mod:`repro.compression.estimator` — codec-free bit-rate prediction
  from quantization-code histograms (the calibration/sweep fast path),
- :mod:`repro.compression.zfp_like` — a fixed-rate transform codec used
  as the ZFP-style comparator,
- :mod:`repro.compression.api` — the pluggable compressor backbone: a
  capability-typed :class:`CompressorRegistry` resolving serializable
  :class:`CompressorSpec` values into compressor instances, so every
  layer above (calibration, pipeline, campaign, sweeps, the stream
  controller, the CLI) selects a compressor *family* instead of
  hard-coding SZ.
"""

from repro.compression.sz import SZCompressor, CompressedBlock, decompress
from repro.compression.workspace import Workspace
from repro.compression.estimator import RateEstimate, estimate_nbytes
from repro.compression.zfp_like import ZFPLikeCompressor
from repro.compression.regression import AdaptiveSZCompressor
from repro.compression.codecs import HuffmanCodec, RawCodec, ZlibCodec, get_codec
from repro.compression.api import (
    REGISTRY,
    AdaptiveSZAdapter,
    Compressor,
    CompressorCapabilities,
    CompressorRegistry,
    CompressorSpec,
    UnsupportedCapabilityError,
    ZFPLikeAdapter,
    capabilities_of,
    decompress_any,
    register_builtin_families,
    resolve_compressor,
    spec_of,
)
from repro.compression.stats import (
    CompressionStats,
    bit_rate,
    compression_ratio,
    max_abs_error,
    max_pointwise_rel_error,
)

# The registry's builtin families need the concrete compressor modules
# fully imported, so registration runs here rather than in api.py.
register_builtin_families()

__all__ = [
    "SZCompressor",
    "CompressedBlock",
    "decompress",
    "Workspace",
    "RateEstimate",
    "estimate_nbytes",
    "ZFPLikeCompressor",
    "AdaptiveSZCompressor",
    "HuffmanCodec",
    "ZlibCodec",
    "RawCodec",
    "get_codec",
    "REGISTRY",
    "Compressor",
    "CompressorCapabilities",
    "CompressorRegistry",
    "CompressorSpec",
    "UnsupportedCapabilityError",
    "ZFPLikeAdapter",
    "AdaptiveSZAdapter",
    "capabilities_of",
    "decompress_any",
    "register_builtin_families",
    "resolve_compressor",
    "spec_of",
    "CompressionStats",
    "bit_rate",
    "compression_ratio",
    "max_abs_error",
    "max_pointwise_rel_error",
]
