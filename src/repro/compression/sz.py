"""The assembled SZ-style error-bounded lossy compressor.

Pipeline (default ``dual`` engine, matching cuSZ):

1. **Quantize** the field onto the integer lattice of pitch ``2*eb``
   (:mod:`repro.compression.quantizer`) — this alone fixes the pointwise
   error bound.
2. **Predict** with the Lorenzo transform on the integer lattice
   (:mod:`repro.compression.lorenzo`) — smooth data collapses to small
   residuals.
3. **Encode** the bounded residual codes with an entropy codec
   (:mod:`repro.compression.codecs`), with an exact outlier channel for
   residuals outside the code range.

The ``classic`` engine reproduces CPU-SZ's ordering (predict from
reconstructed neighbours, then quantize); it is sequential and intended
for small arrays / the quantization-order ablation.

Both engines guarantee ``max |x - x'| <= eb`` in ``abs`` mode and
``max |x'/x - 1| <= eb`` in ``pw_rel`` mode, verified property-style in
the test suite.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.compression.api import SZ_CAPABILITIES, CompressorSpec
from repro.compression.codecs import Codec, _minimal_uint_dtype, get_codec
from repro.compression.estimator import (
    HEADER_BYTES,
    RateEstimate,
    code_histogram,
    estimate_nbytes,
)
from repro.compression.lorenzo import (
    classic_sz_quantize,
    lorenzo_inverse,
    lorenzo_transform_inplace,
)
from repro.compression.quantizer import (
    DEFAULT_RADIUS,
    QuantizedResiduals,
    decode_residuals,
    dequantize_abs,
    encode_residuals_inplace,
    pw_rel_to_log_abs,
    quantize_abs_into,
)
from repro.compression.workspace import Workspace
from repro.util.validation import check_positive

__all__ = ["SZCompressor", "CompressedBlock", "decompress", "HEADER_BYTES"]

_MODES = ("abs", "pw_rel")
_ENGINES = ("dual", "classic")


def _deflate_channel(buf: "bytes | np.ndarray", level: int = 6) -> bytes:
    """zlib-compress a side-channel buffer; empty channels store ``b""``.

    Skipping the codec for empty channels saves the ~8 dead bytes of
    zlib container per empty payload that every outlier-free block used
    to pay (three payloads x thousands of partitions adds up).
    """
    return zlib.compress(buf, level) if len(buf) else b""


def _inflate_channel(blob: bytes) -> bytes:
    """Inverse of :func:`_deflate_channel` (``b""`` short-circuits)."""
    return zlib.decompress(blob) if blob else b""


def _zigzag(values: np.ndarray) -> np.ndarray:
    """Map signed int64 to non-negative ints (0,-1,1,-2,... -> 0,1,2,3,...)."""
    v = np.asarray(values, dtype=np.int64)
    return ((v << 1) ^ (v >> 63)).astype(np.uint64)


def _unzigzag(values: np.ndarray) -> np.ndarray:
    v = np.asarray(values, dtype=np.uint64)
    return ((v >> 1).astype(np.int64)) ^ -(v & 1).astype(np.int64)


@dataclass
class CompressedBlock:
    """A compressed partition plus everything needed to decompress it.

    The block is self-describing: :func:`decompress` needs no compressor
    instance.  ``nbytes`` (and hence :attr:`bit_rate` / :attr:`ratio`)
    charges all payloads plus a fixed :data:`HEADER_BYTES` header.
    """

    shape: tuple[int, ...]
    source_itemsize: int
    eb: float
    mode: str
    engine: str
    codec_name: str
    radius: int
    n_outliers: int
    payloads: dict[str, bytes] = field(repr=False)

    @property
    def n_elements(self) -> int:
        return int(np.prod(self.shape))

    @property
    def nbytes(self) -> int:
        return HEADER_BYTES + sum(len(b) for b in self.payloads.values())

    @property
    def bit_rate(self) -> float:
        """Average bits stored per value."""
        return 8.0 * self.nbytes / self.n_elements

    @property
    def ratio(self) -> float:
        """Compression ratio vs. the uncompressed source representation."""
        return self.source_itemsize * self.n_elements / self.nbytes


class SZCompressor:
    """Error-bounded lossy compressor in the SZ family.

    Parameters
    ----------
    mode:
        ``"abs"`` (absolute bound) or ``"pw_rel"`` (pointwise relative
        bound; requires strictly positive data).
    codec:
        Entropy stage: ``"zlib"`` (default; C-speed DEFLATE),
        ``"huffman"`` (from-scratch canonical Huffman + zlib), or
        ``"raw"``.
    radius:
        Quantization-code radius (code range ``[0, 2*radius)``).
    engine:
        ``"dual"`` (vectorized, cuSZ ordering) or ``"classic"``
        (sequential CPU-SZ ordering).

    Examples
    --------
    >>> import numpy as np
    >>> comp = SZCompressor()
    >>> data = np.linspace(0, 1, 64, dtype=np.float32).reshape(4, 4, 4)
    >>> block = comp.compress(data, eb=1e-3)
    >>> recon = comp.decompress(block)
    >>> bool(np.max(np.abs(recon - data)) <= 1e-3)
    True
    """

    #: Declared capabilities (the registry's capability typing): SZ is
    #: the error-bounded family with the codec-free histogram estimator
    #: and the reusable workspace arena.
    capabilities = SZ_CAPABILITIES

    def __init__(
        self,
        mode: str = "abs",
        codec: str | Codec = "zlib",
        radius: int = DEFAULT_RADIUS,
        engine: str = "dual",
    ) -> None:
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
        if radius < 2:
            raise ValueError(f"radius must be >= 2, got {radius}")
        self.mode = mode
        self.codec = get_codec(codec)
        self.radius = int(radius)
        self.engine = engine
        self._tls = threading.local()

    @property
    def spec(self) -> CompressorSpec:
        """This instance's configuration as a serializable spec.

        ``registry.create(compressor.spec)`` reconstructs an instance
        with byte-identical payloads (property-tested); the stream
        ledger records this spec with every decision.
        """
        return CompressorSpec.sz(
            mode=self.mode, codec=self.codec.name, radius=self.radius, engine=self.engine
        )

    # -- workspace management --------------------------------------------

    @property
    def workspace(self) -> Workspace:
        """This thread's reusable kernel scratch arena (created on demand).

        Workspaces are kept per thread (``threading.local``), so sharing
        one compressor across the thread-SPMD backend's rank threads is
        safe; the serial path and each process-pool worker reuse one
        arena across every block they compress.
        """
        ws = getattr(self._tls, "workspace", None)
        if ws is None:
            ws = Workspace()
            self._tls.workspace = ws
        return ws

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_tls", None)  # thread-locals are per-process scratch
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._tls = threading.local()

    # -- public API ------------------------------------------------------

    def compress(
        self, data: np.ndarray, eb: float, workspace: Workspace | None = None
    ) -> CompressedBlock:
        """Compress ``data`` under error bound ``eb``.

        ``eb`` is absolute in ``abs`` mode and relative in ``pw_rel``
        mode.  Arrays of 1-3 dimensions are supported.  ``workspace``
        overrides the compressor's per-thread scratch arena (callers that
        manage their own worker lifetimes can pass one explicitly).
        """
        arr = self._check_array(np.asarray(data))
        eb = check_positive(eb, "eb")
        return self._compress_checked(arr, eb, workspace or self.workspace)

    def compress_many(
        self,
        views: list[np.ndarray],
        ebs: np.ndarray | list[float],
        workspace: Workspace | None = None,
    ) -> list[CompressedBlock]:
        """Compress a batch of partitions under per-partition bounds.

        The batched hot path used by the execution backends: one task can
        carry many partitions, with argument validation and bound checks
        amortized over the whole batch instead of paid per call, and one
        :class:`Workspace` reused across the entire batch so scratch
        buffers are allocated once per worker rather than once per block.
        Output blocks are byte-identical to per-partition
        :meth:`compress` calls.
        """
        arrs = [self._check_array(np.asarray(v)) for v in views]
        eb_arr = np.asarray(ebs, dtype=np.float64)
        if eb_arr.ndim != 1 or eb_arr.size != len(arrs):
            raise ValueError(
                f"need one error bound per view: {len(arrs)} views, "
                f"ebs shape {eb_arr.shape}"
            )
        if not np.isfinite(eb_arr).all() or (eb_arr <= 0).any():
            raise ValueError("all error bounds must be positive and finite")
        ws = workspace or self.workspace
        return [
            self._compress_checked(arr, float(eb), ws) for arr, eb in zip(arrs, eb_arr)
        ]

    def estimate(
        self, data: np.ndarray, eb: float, workspace: Workspace | None = None
    ) -> RateEstimate:
        """Predict the compressed size of ``data`` without running a codec.

        Runs the cheap front of the pipeline (quantize -> Lorenzo ->
        residual codes) and reads the predicted entropy-coded size off
        the quantization-code histogram
        (:mod:`repro.compression.estimator`) — no DEFLATE/Huffman pass,
        no payload bytes.  This is the fast path for rate-model
        calibration and rate-only sweeps (``probe_mode="estimate"``).
        """
        arr = self._check_array(np.asarray(data))
        eb = check_positive(eb, "eb")
        ws = workspace or self.workspace
        source_itemsize = arr.dtype.itemsize if arr.dtype.kind == "f" else 8
        if self.engine == "dual":
            qr = self._quantize_encode(arr, eb, ws)
            n_out = int(qr.outlier_positions.size)
            # Bin only the occupied code range: the codes are a workspace
            # view we own, so shift in place and histogram the compact
            # span instead of the full [0, 2*radius) alphabet.
            codes = qr.codes
            offset = int(codes.min())
            if offset:
                codes -= offset
            hist = np.bincount(codes)
        else:
            work, abs_eb = self._to_workspace(arr, eb)
            codes3d, _recon = classic_sz_quantize(
                np.atleast_3d(work), abs_eb, self.radius
            )
            hist = code_histogram(codes3d, self.radius)
            n_out = int(hist[0])
            offset = 0
        est_bytes, bits = estimate_nbytes(
            hist, arr.size, n_out, self.codec.name, hist_offset=offset
        )
        return RateEstimate(
            n_elements=int(arr.size),
            source_itemsize=source_itemsize,
            n_outliers=n_out,
            code_bits_per_value=bits,
            est_nbytes=est_bytes,
        )

    def estimate_bitrate(
        self, data: np.ndarray, eb: float, workspace: Workspace | None = None
    ) -> float:
        """Convenience: predicted bits/value without running a codec."""
        return self.estimate(data, eb, workspace).bit_rate

    def _check_array(self, arr: np.ndarray) -> np.ndarray:
        if arr.ndim < 1 or arr.ndim > 3:
            raise ValueError(f"SZCompressor supports 1-3 dimensional data, got {arr.ndim}-D")
        if arr.size == 0:
            raise ValueError("cannot compress an empty array")
        return arr

    def _compress_checked(
        self, arr: np.ndarray, eb: float, ws: Workspace
    ) -> CompressedBlock:
        source_itemsize = arr.dtype.itemsize if arr.dtype.kind == "f" else 8

        if self.engine == "dual":
            qr = self._quantize_encode(arr, eb, ws)
            payloads = self._encode_payloads(qr, ws)
        else:
            work, abs_eb = self._to_workspace(arr, eb)
            codes3d, _recon = classic_sz_quantize(
                np.atleast_3d(work), abs_eb, self.radius
            )
            codes = codes3d.ravel()
            out_pos = np.flatnonzero(codes == 0)
            out_val_float = np.atleast_3d(work).ravel()[out_pos]
            payloads = {
                "codes": self.codec.encode(codes),
                "outlier_pos": _deflate_channel(out_pos.astype(np.int64, copy=False)),
                "outlier_val": _deflate_channel(
                    out_val_float.astype(np.float64, copy=False)
                ),
            }
            qr = QuantizedResiduals(codes, out_pos, np.empty(0, np.int64), self.radius)

        return CompressedBlock(
            shape=tuple(arr.shape),
            source_itemsize=source_itemsize,
            eb=float(eb),
            mode=self.mode,
            engine=self.engine,
            codec_name=self.codec.name,
            radius=self.radius,
            n_outliers=int(qr.outlier_positions.size),
            payloads=payloads,
        )

    def decompress(self, block: CompressedBlock) -> np.ndarray:
        """Reconstruct the field from a :class:`CompressedBlock` (float64).

        The block is self-describing; this delegates to the module-level
        :func:`decompress` and ignores the instance's own settings.
        """
        return decompress(block)

    def compress_ratio(self, data: np.ndarray, eb: float) -> float:
        """Convenience: compress and return only the ratio."""
        return self.compress(data, eb).ratio

    # -- internals --------------------------------------------------------

    def _quantize_encode(
        self, arr: np.ndarray, eb: float, ws: Workspace
    ) -> QuantizedResiduals:
        """The fused dual-engine front: quantize -> Lorenzo -> residual codes.

        One pass over reusable workspace buffers: the error-bound space
        mapping, lattice quantization, in-place Lorenzo transform and
        bounded-code encoding all run inside the arena — the only fresh
        allocations are the (normally tiny) outlier channel.  The
        returned codes are a workspace view, valid until the arena's
        ``lattice_i64`` slot is requested again.
        """
        work = ws.request("work_f64", arr.shape, np.float64)
        mask = ws.request("quant_mask", arr.shape, np.bool_)
        if self.mode == "abs":
            abs_eb = eb
            np.isfinite(arr, out=mask)
            if not mask.all():
                raise ValueError("data contains non-finite values (NaN or Inf)")
            with np.errstate(over="ignore"):
                np.divide(arr, 2.0 * abs_eb, out=work, dtype=np.float64)
        else:
            np.less_equal(arr, 0, out=mask)
            if mask.any():
                raise ValueError("pw_rel mode requires strictly positive data")
            abs_eb = pw_rel_to_log_abs(eb)
            np.log(arr, out=work, dtype=np.float64)
            np.isfinite(work, out=mask)
            if not mask.all():
                raise ValueError("data contains non-finite values (NaN or Inf)")
            with np.errstate(over="ignore"):
                np.divide(work, 2.0 * abs_eb, out=work)
        q = quantize_abs_into(work, ws)
        scratch = ws.request("lorenzo_scratch", (arr.size,), np.int64)
        lorenzo_transform_inplace(q, scratch)
        return encode_residuals_inplace(q.reshape(-1), self.radius, ws)

    def _to_workspace(self, arr: np.ndarray, eb: float) -> tuple[np.ndarray, float]:
        """Map data into the space where the bound is absolute."""
        work = np.asarray(arr, dtype=np.float64)
        if self.mode == "abs":
            return work, eb
        if (work <= 0).any():
            raise ValueError("pw_rel mode requires strictly positive data")
        return np.log(work), pw_rel_to_log_abs(eb)

    def _encode_payloads(self, qr: QuantizedResiduals, ws: Workspace) -> dict[str, bytes]:
        codes = qr.codes
        dt = _minimal_uint_dtype(int(codes.max()) if codes.size else 0)
        if codes.dtype == dt:
            narrow = codes
        else:
            # Narrow once here instead of inside the codec, so the
            # int64 workspace codes never round-trip through a fresh
            # full-width copy on their way to the entropy stage.
            narrow = ws.request("codes_narrow", codes.shape, dt)
            np.copyto(narrow, codes, casting="unsafe")
        return {
            "codes": self.codec.encode(narrow),
            "outlier_pos": _deflate_channel(
                qr.outlier_positions.astype(np.int64, copy=False)
            ),
            "outlier_val": _deflate_channel(_zigzag(qr.outlier_values)),
        }


def decompress(block: CompressedBlock) -> np.ndarray:
    """Reconstruct a field from a self-describing :class:`CompressedBlock`."""
    if block.engine == "dual":
        work = _decompress_dual_workspace(block)
    else:
        work = _decompress_classic_workspace(block)
    return work if block.mode == "abs" else np.exp(work)


def _decompress_dual_workspace(block: CompressedBlock) -> np.ndarray:
    n = block.n_elements
    codec = get_codec(block.codec_name)
    codes = codec.decode(block.payloads["codes"], n)
    out_pos = np.frombuffer(_inflate_channel(block.payloads["outlier_pos"]), dtype=np.int64)
    out_val = _unzigzag(
        np.frombuffer(_inflate_channel(block.payloads["outlier_val"]), dtype=np.uint64)
    )
    qr = QuantizedResiduals(codes, out_pos, out_val, block.radius)
    residuals = decode_residuals(qr).reshape(block.shape)
    q = lorenzo_inverse(residuals)
    abs_eb = block.eb if block.mode == "abs" else pw_rel_to_log_abs(block.eb)
    return dequantize_abs(q, abs_eb)


def _decompress_classic_workspace(block: CompressedBlock) -> np.ndarray:
    n = block.n_elements
    codec = get_codec(block.codec_name)
    codes = codec.decode(block.payloads["codes"], n)
    out_pos = np.frombuffer(_inflate_channel(block.payloads["outlier_pos"]), dtype=np.int64)
    out_val = np.frombuffer(_inflate_channel(block.payloads["outlier_val"]), dtype=np.float64)
    shape3d = block.shape + (1,) * (3 - len(block.shape))
    abs_eb = block.eb if block.mode == "abs" else pw_rel_to_log_abs(block.eb)
    return _classic_reconstruct(
        codes.reshape(shape3d), out_pos, out_val, abs_eb, block.radius
    ).reshape(block.shape)


def _classic_reconstruct(
    codes: np.ndarray,
    outlier_pos: np.ndarray,
    outlier_val: np.ndarray,
    eb: float,
    radius: int,
) -> np.ndarray:
    """Sequential reconstruction mirroring :func:`classic_sz_quantize`."""
    nx, ny, nz = codes.shape
    outliers = dict(zip(outlier_pos.tolist(), outlier_val.tolist()))
    recon = np.zeros((nx + 1, ny + 1, nz + 1), dtype=np.float64)
    two_eb = 2.0 * eb
    flat = 0
    for i in range(nx):
        for j in range(ny):
            for k in range(nz):
                code = codes[i, j, k]
                if code == 0:
                    recon[i + 1, j + 1, k + 1] = outliers[flat]
                else:
                    pred = (
                        recon[i, j + 1, k + 1]
                        + recon[i + 1, j, k + 1]
                        + recon[i + 1, j + 1, k]
                        - recon[i, j, k + 1]
                        - recon[i, j + 1, k]
                        - recon[i + 1, j, k]
                        + recon[i, j, k]
                    )
                    recon[i + 1, j + 1, k + 1] = pred + (int(code) - radius) * two_eb
                flat += 1
    return recon[1:, 1:, 1:]
