"""The assembled SZ-style error-bounded lossy compressor.

Pipeline (default ``dual`` engine, matching cuSZ):

1. **Quantize** the field onto the integer lattice of pitch ``2*eb``
   (:mod:`repro.compression.quantizer`) — this alone fixes the pointwise
   error bound.
2. **Predict** with the Lorenzo transform on the integer lattice
   (:mod:`repro.compression.lorenzo`) — smooth data collapses to small
   residuals.
3. **Encode** the bounded residual codes with an entropy codec
   (:mod:`repro.compression.codecs`), with an exact outlier channel for
   residuals outside the code range.

The ``classic`` engine reproduces CPU-SZ's ordering (predict from
reconstructed neighbours, then quantize); it is sequential and intended
for small arrays / the quantization-order ablation.

Both engines guarantee ``max |x - x'| <= eb`` in ``abs`` mode and
``max |x'/x - 1| <= eb`` in ``pw_rel`` mode, verified property-style in
the test suite.
"""

from __future__ import annotations

import os
import threading
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.compression.api import SZ_CAPABILITIES, CompressorSpec
from repro.compression.codecs import Codec, _minimal_uint_dtype, get_codec
from repro.compression.estimator import (
    HEADER_BYTES,
    RQEstimate,
    code_histogram,
    estimate_nbytes,
    estimate_nbytes_rows,
)
from repro.compression.kernels import (
    KERNEL_CHOICES,
    ArrayKernels,
    get_kernels,
    unzigzag,
    zigzag,
)
from repro.compression.lorenzo import classic_sz_quantize, lorenzo_inverse
from repro.compression.quantizer import (
    DEFAULT_RADIUS,
    QuantizedResiduals,
    decode_residuals,
    dequantize_abs,
    pw_rel_to_log_abs,
)
from repro.compression.workspace import Workspace
from repro.util.validation import check_positive

__all__ = ["SZCompressor", "CompressedBlock", "decompress", "HEADER_BYTES"]

_MODES = ("abs", "pw_rel")
_ENGINES = ("dual", "classic")

#: Shared empty channel — the hot path must not allocate per block.
_EMPTY_I64 = np.empty(0, dtype=np.int64)


def _deflate_channel(buf: "bytes | np.ndarray", level: int = 6) -> bytes:
    """zlib-compress a side-channel buffer; empty channels store ``b""``.

    Skipping the codec for empty channels saves the ~8 dead bytes of
    zlib container per empty payload that every outlier-free block used
    to pay (three payloads x thousands of partitions adds up).
    """
    return zlib.compress(buf, level) if len(buf) else b""


def _inflate_channel(blob: bytes) -> bytes:
    """Inverse of :func:`_deflate_channel` (``b""`` short-circuits)."""
    return zlib.decompress(blob) if blob else b""


# Canonical zigzag now lives in the kernels module (it is one of the
# array-API ops); these aliases keep the historical private names alive.
_zigzag = zigzag
_unzigzag = unzigzag


def _pack_outlier_pos(arr: np.ndarray, level: int = 6) -> bytes:
    """Serialize outlier positions: ``[1B itemsize][zlib(narrowed ints)]``.

    The caller narrows ``arr`` to the smallest uint dtype covering the
    block size, so a 64^3 block spends 4 bytes per outlier position
    instead of int64's 8 before DEFLATE even starts.  Empty channels
    store ``b""``.  The leading itemsize byte is in {1, 2, 4, 8} and a
    bare legacy zlib stream starts with 0x78, so
    :func:`_decode_outlier_pos` can keep reading old int64 blobs.
    """
    if not arr.size:
        return b""
    return bytes([arr.dtype.itemsize]) + zlib.compress(arr, level)


def _decode_outlier_pos(blob: bytes) -> np.ndarray:
    """Read an outlier-position channel, legacy int64 blobs included."""
    if not blob:
        return _EMPTY_I64
    itemsize = blob[0]
    if itemsize in (1, 2, 4, 8):
        raw = zlib.decompress(blob[1:])
        return np.frombuffer(raw, dtype=np.dtype(f"u{itemsize}")).astype(np.int64)
    # Legacy format: the whole blob is a zlib stream of int64 positions.
    return np.frombuffer(zlib.decompress(blob), dtype=np.int64)


@dataclass
class CompressedBlock:
    """A compressed partition plus everything needed to decompress it.

    The block is self-describing: :func:`decompress` needs no compressor
    instance.  ``nbytes`` (and hence :attr:`bit_rate` / :attr:`ratio`)
    charges all payloads plus a fixed :data:`HEADER_BYTES` header.
    """

    shape: tuple[int, ...]
    source_itemsize: int
    eb: float
    mode: str
    engine: str
    codec_name: str
    radius: int
    n_outliers: int
    payloads: dict[str, bytes] = field(repr=False)

    @property
    def n_elements(self) -> int:
        return int(np.prod(self.shape))

    @property
    def nbytes(self) -> int:
        return HEADER_BYTES + sum(len(b) for b in self.payloads.values())

    @property
    def bit_rate(self) -> float:
        """Average bits stored per value."""
        return 8.0 * self.nbytes / self.n_elements

    @property
    def ratio(self) -> float:
        """Compression ratio vs. the uncompressed source representation."""
        return self.source_itemsize * self.n_elements / self.nbytes


class SZCompressor:
    """Error-bounded lossy compressor in the SZ family.

    Parameters
    ----------
    mode:
        ``"abs"`` (absolute bound) or ``"pw_rel"`` (pointwise relative
        bound; requires strictly positive data).
    codec:
        Entropy stage: ``"zlib"`` (default; C-speed DEFLATE),
        ``"huffman"`` (from-scratch canonical Huffman + zlib), or
        ``"raw"``.
    radius:
        Quantization-code radius (code range ``[0, 2*radius)``).
    engine:
        ``"dual"`` (vectorized, cuSZ ordering) or ``"classic"``
        (sequential CPU-SZ ordering).
    kernels:
        Batch kernel backend for the dual engine's hot path:
        ``"numpy"`` (reference), ``"numba"``
        (``@njit(parallel=True)``; requires numba), or ``"auto"``
        (default — numba when importable, else numpy).  Payload bytes
        are identical across backends (property-tested).

    Examples
    --------
    >>> import numpy as np
    >>> comp = SZCompressor()
    >>> data = np.linspace(0, 1, 64, dtype=np.float32).reshape(4, 4, 4)
    >>> block = comp.compress(data, eb=1e-3)
    >>> recon = comp.decompress(block)
    >>> bool(np.max(np.abs(recon - data)) <= 1e-3)
    True
    """

    #: Declared capabilities (the registry's capability typing): SZ is
    #: the error-bounded family with the codec-free histogram estimator
    #: and the reusable workspace arena.
    capabilities = SZ_CAPABILITIES

    def __init__(
        self,
        mode: str = "abs",
        codec: str | Codec = "zlib",
        radius: int = DEFAULT_RADIUS,
        engine: str = "dual",
        kernels: str = "auto",
    ) -> None:
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
        if radius < 2:
            raise ValueError(f"radius must be >= 2, got {radius}")
        if kernels not in KERNEL_CHOICES:
            raise ValueError(
                f"kernels must be one of {KERNEL_CHOICES}, got {kernels!r}"
            )
        self.mode = mode
        self.codec = get_codec(codec)
        self.radius = int(radius)
        self.engine = engine
        self.kernels = kernels
        # An explicit numba request fails here, at construction, with an
        # actionable message; "auto"/"numpy" resolve lazily on first use.
        self._kernel_impl: ArrayKernels | None = (
            get_kernels(kernels) if kernels == "numba" else None
        )
        self._tls = threading.local()

    @property
    def spec(self) -> CompressorSpec:
        """This instance's configuration as a serializable spec.

        ``registry.create(compressor.spec)`` reconstructs an instance
        with byte-identical payloads (property-tested); the stream
        ledger records this spec with every decision.
        """
        return CompressorSpec.sz(
            mode=self.mode,
            codec=self.codec.name,
            radius=self.radius,
            engine=self.engine,
            kernels=self.kernels,
        )

    def _kernels(self) -> ArrayKernels:
        impl = self._kernel_impl
        if impl is None:
            impl = self._kernel_impl = get_kernels(self.kernels)
        return impl

    @property
    def kernel_backend(self) -> str:
        """The resolved kernel-backend name (``"auto"`` pinned to its pick)."""
        return self._kernels().name

    # -- workspace management --------------------------------------------

    @property
    def workspace(self) -> Workspace:
        """This thread's reusable kernel scratch arena (created on demand).

        Workspaces are kept per thread (``threading.local``), so sharing
        one compressor across the thread-SPMD backend's rank threads is
        safe; the serial path and each process-pool worker reuse one
        arena across every block they compress.
        """
        ws = getattr(self._tls, "workspace", None)
        if ws is None:
            ws = Workspace()
            self._tls.workspace = ws
        return ws

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_tls", None)  # thread-locals are per-process scratch
        state.pop("_kernel_impl", None)  # re-resolved per process
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.__dict__.setdefault("kernels", "auto")  # pre-kernels pickles
        self._kernel_impl = None
        self._tls = threading.local()

    # -- public API ------------------------------------------------------

    def compress(
        self, data: np.ndarray, eb: float, workspace: Workspace | None = None
    ) -> CompressedBlock:
        """Compress ``data`` under error bound ``eb``.

        ``eb`` is absolute in ``abs`` mode and relative in ``pw_rel``
        mode.  Arrays of 1-3 dimensions are supported.  ``workspace``
        overrides the compressor's per-thread scratch arena (callers that
        manage their own worker lifetimes can pass one explicitly).
        """
        arr = self._check_array(np.asarray(data))
        eb = check_positive(eb, "eb")
        return self._compress_checked(arr, eb, workspace or self.workspace)

    def compress_many(
        self,
        views: list[np.ndarray],
        ebs: np.ndarray | list[float],
        workspace: Workspace | None = None,
        threads: int | None = None,
    ) -> list[CompressedBlock]:
        """Compress a batch of partitions under per-partition bounds.

        The batched hot path used by the execution backends.  Blocks are
        grouped by shape and each group runs the *whole* front of the
        pipeline — quantize, Lorenzo, residual encode, code narrowing,
        outlier side channels — as one multi-block kernel pass over
        ``(B, n)`` workspace arenas (see
        :mod:`repro.compression.kernels`), instead of one interpreter
        round-trip per block.  The per-block entropy stage then fans out
        over a thread pool (zlib releases the GIL), saturating cores
        without any shared-memory round-trips for intermediates.

        ``threads`` caps the entropy-stage fan-out: ``None`` (default)
        uses the CPU count, ``1`` keeps everything in the calling thread
        (what process-pool workers pass to avoid oversubscription).
        Output blocks are byte-identical to per-partition
        :meth:`compress` calls regardless of grouping, backend, or
        thread count (property-tested).
        """
        arrs = [self._check_array(np.asarray(v)) for v in views]
        eb_arr = np.asarray(ebs, dtype=np.float64)
        if eb_arr.ndim != 1 or eb_arr.size != len(arrs):
            raise ValueError(
                f"need one error bound per view: {len(arrs)} views, "
                f"ebs shape {eb_arr.shape}"
            )
        if not np.isfinite(eb_arr).all() or (eb_arr <= 0).any():
            raise ValueError("all error bounds must be positive and finite")
        ws = workspace or self.workspace
        if self.engine != "dual":
            # The classic engine is a sequential reference path with no
            # batched kernels; keep the historical per-block loop.
            return [
                self._compress_checked(arr, float(eb), ws)  # repro-lint: disable=RL011
                for arr, eb in zip(arrs, eb_arr)
            ]
        if threads is None:
            threads = os.cpu_count() or 1
        blocks: list[CompressedBlock | None] = [None] * len(arrs)
        groups: dict[tuple[int, ...], list[int]] = {}
        for i, arr in enumerate(arrs):
            groups.setdefault(arr.shape, []).append(i)
        for idxs in groups.values():
            group = self._compress_batch(
                [arrs[i] for i in idxs], eb_arr[idxs], ws, threads
            )
            for i, blk in zip(idxs, group):
                blocks[i] = blk
        return blocks

    def estimate(
        self, data: np.ndarray, eb: float, workspace: Workspace | None = None
    ) -> RQEstimate:
        """Predict compressed size *and* quality without running a codec.

        Runs the cheap front of the pipeline (quantize -> Lorenzo ->
        residual codes) and reads the predicted entropy-coded size off
        the quantization-code histogram
        (:mod:`repro.compression.estimator`) — no DEFLATE/Huffman pass,
        no payload bytes.  The same quantization statistics (outlier
        census, error bound, value range) also pin the closed-form
        distortion prediction, so the returned
        :class:`~repro.compression.estimator.RQEstimate` carries
        predicted PSNR/NRMSE alongside the rate.  This is the fast path
        for rate-model calibration, rate-only sweeps
        (``probe_mode="estimate"``) and the ratio-quality engine
        (``probe_mode="model"``).
        """
        arr = self._check_array(np.asarray(data))
        eb = check_positive(eb, "eb")
        return self.estimate_many([arr], [eb], workspace)[0]

    def estimate_many(
        self,
        views: list[np.ndarray],
        ebs: np.ndarray | list[float],
        workspace: Workspace | None = None,
    ) -> list[RQEstimate]:
        """Batched quantization-statistics probe over many (view, eb) pairs.

        The probe analogue of :meth:`compress_many`: views are grouped by
        shape and each group runs **one** multi-block kernel pass
        (quantize -> Lorenzo -> residual codes) over the ``(B, n)``
        workspace arenas — so probing one partition at five bounds, or
        sixty-four partitions at one bound, costs a single batched front
        instead of ``B`` interpreter round-trips, and no entropy codec
        ever runs.  Value statistics (range, mean square) are computed
        once per distinct view even when it recurs at several bounds.

        The whole probe is wrapped in an ``rq.probe`` telemetry span so
        armed traces show the trial compressions the ratio-quality model
        eliminated.
        """
        arrs = [self._check_array(np.asarray(v)) for v in views]
        eb_arr = np.asarray(ebs, dtype=np.float64)
        if eb_arr.ndim != 1 or eb_arr.size != len(arrs):
            raise ValueError(
                f"need one error bound per view: {len(arrs)} views, "
                f"ebs shape {eb_arr.shape}"
            )
        if not np.isfinite(eb_arr).all() or (eb_arr <= 0).any():
            raise ValueError("all error bounds must be positive and finite")
        ws = workspace or self.workspace
        tracer = telemetry.get_tracer()
        ranges: dict[int, float] = {}  # id(view) -> value range

        def value_range_of(arr: np.ndarray) -> float:
            got = ranges.get(id(arr))
            if got is None:
                got = ranges[id(arr)] = float(arr.max()) - float(arr.min())
            return got

        def finish(
            arr: np.ndarray, eb: float, est_bytes: float, bits: float,
            n_out: int, mse: float,
        ) -> RQEstimate:
            return RQEstimate(
                n_elements=int(arr.size),
                source_itemsize=arr.dtype.itemsize if arr.dtype.kind == "f" else 8,
                n_outliers=n_out,
                code_bits_per_value=bits,
                est_nbytes=est_bytes,
                eb=float(eb),
                value_range=value_range_of(arr),
                predicted_mse=mse,
            )

        out: list[RQEstimate | None] = [None] * len(arrs)
        with tracer.span("rq.probe", blocks=len(arrs), engine=self.engine):
            if self.engine != "dual":
                # The classic engine has no batched kernels; probe each
                # block through its sequential reference quantizer.  Its
                # reconstruction keeps outlier cells exact, so the
                # workspace-space difference IS the realised error.
                for i, arr in enumerate(arrs):  # repro-lint: disable=RL011
                    work, abs_eb = self._to_workspace(arr, float(eb_arr[i]))
                    work3 = np.atleast_3d(work)
                    codes3d, recon = classic_sz_quantize(work3, abs_eb, self.radius)
                    hist = code_histogram(codes3d, self.radius)
                    est_bytes, bits = estimate_nbytes(
                        hist, arr.size, int(hist[0]), self.codec.name
                    )
                    err = work3 - recon
                    if self.mode != "abs":
                        # log-space error -> value space to first order
                        err *= np.atleast_3d(np.asarray(arr, dtype=np.float64))
                    mse = float(np.mean(np.square(err)))
                    out[i] = finish(
                        arr, float(eb_arr[i]), est_bytes, bits, int(hist[0]), mse
                    )
                return out  # type: ignore[return-value]
            groups: dict[tuple[int, ...], list[int]] = {}
            for i, arr in enumerate(arrs):
                groups.setdefault(arr.shape, []).append(i)
            for idxs in groups.values():
                sub = [arrs[i] for i in idxs]
                lattice, counts, pos, _val = self._quantize_encode_batch(
                    sub, eb_arr[idxs], ws
                )
                mses = self._observed_mse_rows(sub, eb_arr[idxs], pos, counts, ws)
                # Group-wide size prediction: one sparse census over the
                # sorted code matrix (the codes are a workspace view we
                # own) instead of B dense histograms — at tight bounds
                # the residual codes span far more values than a row
                # holds, so O(n log n) beats O(span) by a wide margin.
                est_arr, bits_arr = estimate_nbytes_rows(
                    lattice, counts, self.codec.name
                )
                for row, i in enumerate(idxs):
                    out[i] = finish(
                        arrs[i], float(eb_arr[i]), float(est_arr[row]),
                        float(bits_arr[row]), int(counts[row]), float(mses[row]),
                    )
        return out  # type: ignore[return-value]

    def _observed_mse_rows(
        self,
        sub: list[np.ndarray],
        eb_sub: np.ndarray,
        pos: np.ndarray,
        counts: np.ndarray,
        ws: Workspace,
    ) -> np.ndarray:
        """Realised quantization MSE of each probed view, in value space.

        Called right after ``_quantize_encode_batch``: ``kern.quantize``
        rounds the work arena in place, so its rows hold each block's
        float lattice.  Re-mapping the sources into bound space and
        differencing against it yields every point's actual lattice
        error in a few group-wide passes; outlier positions (residual
        misfits whose values ship exactly) are zeroed.  The uniform
        U[-eb, eb] model assumes errors fill the bound; on fields whose
        values sit mostly far below ``eb`` (lognormal density: nearly
        everything quantizes to code 0 with error << eb) it over-predicts
        MSE by an order of magnitude, so the probe measures instead of
        assuming.
        """
        n_blocks = len(sub)
        n = int(sub[0].size)
        rounded = ws.request("batch_work_f64", (n_blocks, n), np.float64)
        err = ws.request("rq_err_f64", (n_blocks, n), np.float64)
        scales = ws.request("rq_scales_f64", (n_blocks,), np.float64)
        if self.mode == "abs":
            for row, arr in enumerate(sub):
                scales[row] = 2.0 * float(eb_sub[row])
                np.divide(
                    arr.reshape(-1), scales[row], out=err[row], dtype=np.float64
                )
        else:
            for row, arr in enumerate(sub):
                scales[row] = 2.0 * pw_rel_to_log_abs(float(eb_sub[row]))
                np.log(arr.reshape(-1), out=err[row], dtype=np.float64)
                err[row] /= scales[row]
        err -= rounded
        err *= scales[:, None]
        if self.mode != "abs":
            # first order: value error ~ |x| * log-space error
            for row, arr in enumerate(sub):
                err[row] *= arr.reshape(-1)
        offs = ws.request("rq_offs_i64", (n_blocks + 1,), np.int64)
        offs[0] = 0
        np.cumsum(counts, out=offs[1:])
        for row in np.flatnonzero(counts):
            err[row, pos[offs[row]:offs[row + 1]]] = 0.0
        return np.einsum("ij,ij->i", err, err) / n

    def estimate_bitrate(
        self, data: np.ndarray, eb: float, workspace: Workspace | None = None
    ) -> float:
        """Convenience: predicted bits/value without running a codec."""
        return self.estimate(data, eb, workspace).bit_rate

    def _check_array(self, arr: np.ndarray) -> np.ndarray:
        if arr.ndim < 1 or arr.ndim > 3:
            raise ValueError(f"SZCompressor supports 1-3 dimensional data, got {arr.ndim}-D")
        if arr.size == 0:
            raise ValueError("cannot compress an empty array")
        return arr

    def _compress_checked(
        self, arr: np.ndarray, eb: float, ws: Workspace
    ) -> CompressedBlock:
        if self.engine == "dual":
            # One production path: a single block is a batch of one.
            eb_arr = np.asarray([eb], dtype=np.float64)
            return self._compress_batch([arr], eb_arr, ws, threads=1)[0]

        source_itemsize = arr.dtype.itemsize if arr.dtype.kind == "f" else 8
        work, abs_eb = self._to_workspace(arr, eb)
        codes3d, _recon = classic_sz_quantize(np.atleast_3d(work), abs_eb, self.radius)
        codes = codes3d.ravel()
        out_pos = np.flatnonzero(codes == 0)
        out_val_float = np.atleast_3d(work).ravel()[out_pos]
        pos_dt = _minimal_uint_dtype(max(int(codes.size) - 1, 0))
        payloads = {
            "codes": self.codec.encode(codes),
            "outlier_pos": _pack_outlier_pos(out_pos.astype(pos_dt, copy=False)),
            "outlier_val": _deflate_channel(
                out_val_float.astype(np.float64, copy=False)
            ),
        }

        return CompressedBlock(
            shape=tuple(arr.shape),
            source_itemsize=source_itemsize,
            eb=float(eb),
            mode=self.mode,
            engine=self.engine,
            codec_name=self.codec.name,
            radius=self.radius,
            n_outliers=int(out_pos.size),
            payloads=payloads,
        )

    def decompress(self, block: CompressedBlock) -> np.ndarray:
        """Reconstruct the field from a :class:`CompressedBlock` (float64).

        The block is self-describing; this delegates to the module-level
        :func:`decompress` and ignores the instance's own settings.
        """
        return decompress(block)

    def compress_ratio(self, data: np.ndarray, eb: float) -> float:
        """Convenience: compress and return only the ratio."""
        return self.compress(data, eb).ratio

    # -- internals --------------------------------------------------------

    def _compress_batch(
        self,
        arrs: list[np.ndarray],
        eb_arr: np.ndarray,
        ws: Workspace,
        threads: int,
    ) -> list[CompressedBlock]:
        """Compress a group of *same-shape* blocks in one kernel pass."""
        codes, counts, pos, val = self._quantize_encode_batch(arrs, eb_arr, ws)
        payloads = self._encode_payloads_batch(codes, counts, pos, val, ws, threads)
        blocks = []
        for b, arr in enumerate(arrs):
            source_itemsize = arr.dtype.itemsize if arr.dtype.kind == "f" else 8
            blocks.append(
                CompressedBlock(
                    shape=tuple(arr.shape),
                    source_itemsize=source_itemsize,
                    eb=float(eb_arr[b]),
                    mode=self.mode,
                    engine=self.engine,
                    codec_name=self.codec.name,
                    radius=self.radius,
                    n_outliers=int(counts[b]),
                    payloads=payloads[b],
                )
            )
        return blocks

    def _quantize_encode_batch(
        self, arrs: list[np.ndarray], eb_arr: np.ndarray, ws: Workspace
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Batched dual-engine front: quantize -> Lorenzo -> residual codes.

        All blocks (same shape, one per row of the ``(B, n)`` workspace
        arenas) run through the kernel backend in one multi-block pass.
        The *error-bound space mapping* (divide / log) stays in NumPy on
        every backend — transcendentals are not bit-stable across math
        libraries, and payload byte-identity is contract; see
        :mod:`repro.compression.kernels`.  Returns
        ``(codes (B, n) view, outlier counts, positions, values)``; the
        codes view is valid until the arena's ``batch_lattice_i64`` slot
        is requested again.
        """
        kern = self._kernels()
        tracer = telemetry.get_tracer()  # null object when disarmed
        n_blocks = len(arrs)
        shape = arrs[0].shape
        n = int(arrs[0].size)
        work = ws.request("batch_work_f64", (n_blocks, n), np.float64)
        mask = ws.request("batch_quant_mask", (n_blocks, n), np.bool_)
        with tracer.span("sz.map", blocks=n_blocks, mode=self.mode):
            if self.mode == "abs":
                for b, arr in enumerate(arrs):
                    np.isfinite(arr, out=mask[b].reshape(shape))
                if not mask.all():
                    raise ValueError("data contains non-finite values (NaN or Inf)")
                with np.errstate(over="ignore"):
                    for b, arr in enumerate(arrs):
                        np.divide(
                            arr,
                            2.0 * float(eb_arr[b]),
                            out=work[b].reshape(shape),
                            dtype=np.float64,
                        )
            else:
                for b, arr in enumerate(arrs):
                    np.less_equal(arr, 0, out=mask[b].reshape(shape))
                if mask.any():
                    raise ValueError("pw_rel mode requires strictly positive data")
                for b, arr in enumerate(arrs):
                    np.log(arr, out=work[b].reshape(shape), dtype=np.float64)
                np.isfinite(work, out=mask)
                if not mask.all():
                    raise ValueError("data contains non-finite values (NaN or Inf)")
                with np.errstate(over="ignore"):
                    for b in range(n_blocks):
                        np.divide(
                            work[b],
                            2.0 * pw_rel_to_log_abs(float(eb_arr[b])),
                            out=work[b],
                        )
        lattice = ws.request("batch_lattice_i64", (n_blocks, n), np.int64)
        with tracer.span("sz.quantize", blocks=n_blocks, kernels=kern.name):
            ok = kern.quantize(work, lattice, mask)
        if not ok:
            raise ValueError(
                "error bound too small relative to data magnitude: quantization "
                "lattice exceeds int64 range"
            )
        # Normalize to (B, nx, ny, nz); length-1 axes are the identity
        # under the zero-boundary difference, so padding is free.
        shape3d = shape + (1,) * (3 - len(shape))
        scratch = ws.request("batch_lorenzo_scratch", (n_blocks * n,), np.int64)
        with tracer.span("sz.lorenzo", blocks=n_blocks, kernels=kern.name):
            kern.lorenzo(lattice.reshape((n_blocks,) + shape3d), scratch)
        fits = ws.request("batch_fits_mask", (n_blocks, n), np.bool_)
        misfit = ws.request("batch_misfit_mask", (n_blocks, n), np.bool_)
        with tracer.span("sz.residual", blocks=n_blocks, kernels=kern.name):
            counts, pos, val = kern.encode_residuals(lattice, self.radius, fits, misfit)
        return lattice, counts, pos, val

    def _encode_payloads_batch(
        self,
        codes: np.ndarray,
        counts: np.ndarray,
        pos: np.ndarray,
        val: np.ndarray,
        ws: Workspace,
        threads: int,
    ) -> list[dict[str, bytes]]:
        """Vectorized side channels + thread-parallel entropy stage.

        Code narrowing, outlier-position narrowing and the zigzag map
        each run once over the whole group; only the per-block entropy
        encodes remain, and those fan out over a transient thread pool
        (zlib/DEFLATE releases the GIL) when ``threads > 1``.
        """
        kern = self._kernels()
        tracer = telemetry.get_tracer()
        n_blocks, n = codes.shape
        with tracer.span("sz.side_channels", blocks=n_blocks):
            maxes = codes.max(axis=1)
            dts = [_minimal_uint_dtype(int(m)) for m in maxes]
            rows: list[np.ndarray] = [codes[0]] * n_blocks
            distinct = list(dict.fromkeys(dts))
            if len(distinct) == 1:
                # The common case — one exact-cast pass over the whole group.
                buf = ws.request("batch_codes_narrow", (n_blocks, n), distinct[0])
                kern.narrow(codes, buf)
                rows = [buf[b] for b in range(n_blocks)]
            else:
                # Mixed widths: one arena slot per width (slots are keyed by
                # dtype), each block narrowed into its width's stack.
                cursor = dict.fromkeys(distinct, 0)
                bufs = {
                    dt: ws.request("batch_codes_narrow", (dts.count(dt), n), dt)
                    for dt in distinct
                }
                for b, dt in enumerate(dts):
                    r = cursor[dt]
                    cursor[dt] = r + 1
                    kern.narrow(codes[b], bufs[dt][r])
                    rows[b] = bufs[dt][r]
            offsets = ws.request("batch_offsets", (n_blocks + 1,), np.int64)
            offsets[0] = 0
            np.cumsum(counts, out=offsets[1:])
            if pos.size:
                pos_dt = _minimal_uint_dtype(n - 1)
                pos_narrow = ws.request("batch_pos_narrow", pos.shape, pos_dt)
                kern.narrow(pos, pos_narrow)
                zz = kern.zigzag(val)
            else:
                pos_narrow = pos
                zz = val
        codec = self.codec

        def build(b: int) -> dict[str, bytes]:
            lo, hi = int(offsets[b]), int(offsets[b + 1])
            return {
                "codes": codec.encode_narrowed(rows[b]),
                "outlier_pos": _pack_outlier_pos(pos_narrow[lo:hi]),
                "outlier_val": _deflate_channel(zz[lo:hi]),
            }

        with tracer.span("sz.entropy", blocks=n_blocks, codec=codec.name):
            if threads > 1 and n_blocks > 1:
                # Lazy import: parallel.backends imports this module.
                from repro.parallel.backends import get_backend

                return get_backend("thread").map_tasks(build, range(n_blocks))
            return [build(b) for b in range(n_blocks)]

    def _quantize_encode(
        self, arr: np.ndarray, eb: float, ws: Workspace
    ) -> QuantizedResiduals:
        """Single-block view of the batched front (a batch of one).

        Kept for the estimator and as the historical probing surface;
        the returned codes are a row view of the batch arena, valid
        until ``batch_lattice_i64`` is requested again.
        """
        eb_arr = np.asarray([eb], dtype=np.float64)
        codes, _counts, pos, val = self._quantize_encode_batch([arr], eb_arr, ws)
        return QuantizedResiduals(codes[0], pos, val, self.radius)

    def _to_workspace(self, arr: np.ndarray, eb: float) -> tuple[np.ndarray, float]:
        """Map data into the space where the bound is absolute."""
        work = np.asarray(arr, dtype=np.float64)
        if self.mode == "abs":
            return work, eb
        if (work <= 0).any():
            raise ValueError("pw_rel mode requires strictly positive data")
        return np.log(work), pw_rel_to_log_abs(eb)

    def _encode_payloads(self, qr: QuantizedResiduals, ws: Workspace) -> dict[str, bytes]:
        """Single-block payload assembly (compat/reference; the batch
        path produces byte-identical output per block)."""
        codes = qr.codes
        dt = _minimal_uint_dtype(int(codes.max()) if codes.size else 0)
        if codes.dtype == dt:
            narrow = codes
        else:
            # Narrow once here instead of inside the codec, so the
            # int64 workspace codes never round-trip through a fresh
            # full-width copy on their way to the entropy stage.
            narrow = ws.request("codes_narrow", codes.shape, dt)
            np.copyto(narrow, codes, casting="unsafe")
        pos_dt = _minimal_uint_dtype(max(int(codes.size) - 1, 0))
        return {
            "codes": self.codec.encode_narrowed(narrow),
            "outlier_pos": _pack_outlier_pos(
                qr.outlier_positions.astype(pos_dt, copy=False)
            ),
            "outlier_val": _deflate_channel(_zigzag(qr.outlier_values)),
        }


def decompress(block: CompressedBlock) -> np.ndarray:
    """Reconstruct a field from a self-describing :class:`CompressedBlock`."""
    if block.engine == "dual":
        work = _decompress_dual_workspace(block)
    else:
        work = _decompress_classic_workspace(block)
    return work if block.mode == "abs" else np.exp(work)


def _decompress_dual_workspace(block: CompressedBlock) -> np.ndarray:
    n = block.n_elements
    codec = get_codec(block.codec_name)
    codes = codec.decode(block.payloads["codes"], n)
    out_pos = _decode_outlier_pos(block.payloads["outlier_pos"])
    out_val = _unzigzag(
        np.frombuffer(_inflate_channel(block.payloads["outlier_val"]), dtype=np.uint64)
    )
    qr = QuantizedResiduals(codes, out_pos, out_val, block.radius)
    residuals = decode_residuals(qr).reshape(block.shape)
    q = lorenzo_inverse(residuals)
    abs_eb = block.eb if block.mode == "abs" else pw_rel_to_log_abs(block.eb)
    return dequantize_abs(q, abs_eb)


def _decompress_classic_workspace(block: CompressedBlock) -> np.ndarray:
    n = block.n_elements
    codec = get_codec(block.codec_name)
    codes = codec.decode(block.payloads["codes"], n)
    out_pos = _decode_outlier_pos(block.payloads["outlier_pos"])
    out_val = np.frombuffer(_inflate_channel(block.payloads["outlier_val"]), dtype=np.float64)
    shape3d = block.shape + (1,) * (3 - len(block.shape))
    abs_eb = block.eb if block.mode == "abs" else pw_rel_to_log_abs(block.eb)
    return _classic_reconstruct(
        codes.reshape(shape3d), out_pos, out_val, abs_eb, block.radius
    ).reshape(block.shape)


def _classic_reconstruct(
    codes: np.ndarray,
    outlier_pos: np.ndarray,
    outlier_val: np.ndarray,
    eb: float,
    radius: int,
) -> np.ndarray:
    """Sequential reconstruction mirroring :func:`classic_sz_quantize`."""
    nx, ny, nz = codes.shape
    outliers = dict(zip(outlier_pos.tolist(), outlier_val.tolist()))
    recon = np.zeros((nx + 1, ny + 1, nz + 1), dtype=np.float64)
    two_eb = 2.0 * eb
    flat = 0
    for i in range(nx):
        for j in range(ny):
            for k in range(nz):
                code = codes[i, j, k]
                if code == 0:
                    recon[i + 1, j + 1, k + 1] = outliers[flat]
                else:
                    pred = (
                        recon[i, j + 1, k + 1]
                        + recon[i + 1, j, k + 1]
                        + recon[i + 1, j + 1, k]
                        - recon[i, j, k + 1]
                        - recon[i, j + 1, k]
                        - recon[i + 1, j, k]
                        + recon[i, j, k]
                    )
                    recon[i + 1, j + 1, k + 1] = pred + (int(code) - radius) * two_eb
                flat += 1
    return recon[1:, 1:, 1:]
