"""Reusable scratch buffers for the fused compression kernels.

The hot path of :class:`repro.compression.sz.SZCompressor` needs a
handful of full-array temporaries per call (a float64 quantization
buffer, an int64 lattice/residual buffer, boolean masks, a narrowed
code buffer).  Allocating them per ``compress`` call costs page faults
and memory bandwidth that dominate once the numpy kernels themselves
are cheap — the paper budgets the whole adaptive machinery at 1-5% of
compression time (§4.3), so the compressor itself has to be lean.

A :class:`Workspace` is an arena of named, preallocated buffers.  Each
slot is grown geometrically to the largest size ever requested and
served back as a reshaped view, so a batch of partitions (for example
one :meth:`~repro.compression.sz.SZCompressor.compress_many` call from
an execution-backend worker) allocates its temporaries once and reuses
them for every block.

Thread-safety contract
----------------------
A ``Workspace`` is **not** thread-safe: two concurrent kernels handed
the same instance would scribble over each other's views.  The intended
ownership is one workspace per worker:

- ``SZCompressor`` keeps one workspace *per thread* (``threading.local``)
  so the thread-SPMD backend's per-rank threads never share buffers,
- process-pool workers each hold their own compressor deserialization
  and therefore their own workspace,
- callers may pass an explicit workspace to ``compress_many`` when they
  manage worker lifetimes themselves.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Workspace"]


class Workspace:
    """Arena of named scratch buffers served as shaped views.

    Buffers are keyed by ``(name, dtype)``; a request larger than the
    slot's current capacity reallocates it (with geometric headroom so
    ragged batch shapes don't cause repeated growth), otherwise the
    existing allocation is sliced and reshaped — no copy, no new pages.
    """

    #: Headroom factor applied when a slot must be enlarged, so ragged
    #: ascending batch shapes don't reallocate on every new maximum.
    GROWTH = 1.25

    def __init__(self) -> None:
        self._slots: dict[tuple[str, str], np.ndarray] = {}

    def request(self, name: str, shape: tuple[int, ...], dtype: np.dtype | type) -> np.ndarray:
        """A C-contiguous scratch view of ``shape``/``dtype`` for slot ``name``.

        The contents are uninitialized (whatever the previous kernel left
        behind); callers must fully overwrite the view.  Requesting the
        same name again invalidates previously returned views for it.
        """
        dt = np.dtype(dtype)
        n = int(np.prod(shape)) if shape else 1
        key = (name, dt.str)
        base = self._slots.get(key)
        if base is None or base.size < n:
            base = np.empty(max(int(n * self.GROWTH), 1), dtype=dt)
            self._slots[key] = base
        return base[:n].reshape(shape)

    def nbytes(self) -> int:
        """Total bytes currently held across all slots (diagnostics)."""
        return sum(b.nbytes for b in self._slots.values())

    def clear(self) -> None:
        """Drop every buffer (e.g. after a one-off huge block)."""
        self._slots.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Workspace(slots={len(self._slots)}, nbytes={self.nbytes()})"
