"""Linear-scaling quantization with strict error-bound control.

Implements cuSZ-style *dual quantization*: the data is first snapped to
an integer lattice of pitch ``2*eb`` (guaranteeing ``|x - x'| <= eb``
pointwise), and prediction then runs entirely on integers.  Two
error-bound modes are supported, matching SZ:

- ``abs``    — absolute error bound (the mode the paper requires; ZFP's
  lack of it is why the paper picked SZ),
- ``pw_rel`` — pointwise relative bound, realized as an absolute bound in
  log space (valid for strictly positive fields such as densities and
  temperature).

Residual integers are mapped to bounded non-negative *quantization codes*
around ``radius``; residuals that do not fit are routed to an outlier
channel (positions + exact lattice values) so the bound holds for every
point regardless of data pathology.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.workspace import Workspace
from repro.util.validation import check_finite, check_positive

__all__ = [
    "DEFAULT_RADIUS",
    "QuantizedResiduals",
    "quantize_abs",
    "quantize_abs_into",
    "quantize_lattice_batch",
    "dequantize_abs",
    "pw_rel_to_log_abs",
    "encode_residuals",
    "encode_residuals_inplace",
    "encode_residuals_batch",
    "decode_residuals",
]

DEFAULT_RADIUS = 1 << 15


def quantize_abs(data: np.ndarray, eb: float) -> np.ndarray:
    """Snap ``data`` to the integer lattice of pitch ``2*eb`` (int64).

    The reconstruction ``2*eb*q`` satisfies ``|x - 2*eb*q| <= eb``
    exactly (ties round to even, still within the bound).
    """
    eb = check_positive(eb, "eb")
    arr = np.asarray(data, dtype=np.float64)
    check_finite(arr, "data")
    with np.errstate(over="ignore"):
        q = np.rint(arr / (2.0 * eb))
    if not np.isfinite(q).all() or np.abs(q).max(initial=0.0) >= 2**62:
        raise ValueError(
            "error bound too small relative to data magnitude: quantization "
            "lattice exceeds int64 range"
        )
    return q.astype(np.int64)


def quantize_abs_into(work: np.ndarray, ws: Workspace) -> np.ndarray:
    """Fused tail of :func:`quantize_abs` over a prepared workspace buffer.

    ``work`` must be a float64 workspace view already holding
    ``data / (2*eb)`` (the caller owns the divide so ``pw_rel`` can fuse
    its log pass into the same buffer).  Rounds in place, applies the
    same overflow guard as :func:`quantize_abs`, and casts into a
    reusable int64 lattice buffer — zero fresh full-array allocations.
    The returned view is valid until the workspace's ``lattice_i64``
    slot is requested again.
    """
    np.rint(work, out=work)
    mask = ws.request("quant_mask", work.shape, np.bool_)
    np.isfinite(work, out=mask)
    if not mask.all() or max(float(work.max()), -float(work.min())) >= 2**62:
        raise ValueError(
            "error bound too small relative to data magnitude: quantization "
            "lattice exceeds int64 range"
        )
    q = ws.request("lattice_i64", work.shape, np.int64)
    np.copyto(q, work, casting="unsafe")  # values are integral: cast is exact
    return q


def quantize_lattice_batch(
    work: np.ndarray, lattice: np.ndarray, mask: np.ndarray | None = None
) -> bool:
    """Batched tail of :func:`quantize_abs_into` over caller-owned buffers.

    ``work`` is a ``(B, n)`` float64 stack already holding each block's
    ``data / (2*eb)``; it is rounded in place and exact-cast into the
    int64 ``lattice`` of the same shape.  Returns ``False`` when any
    value is non-finite or outside the int64-safe lattice range (the
    caller raises — this function is also the NumPy reference kernel
    behind the device-ready array API, so it reports instead of
    raising).  ``mask`` is optional bool scratch of the same shape;
    device backends ignore it.
    """
    np.rint(work, out=work)
    if mask is None:
        mask = np.isfinite(work)
    else:
        np.isfinite(work, out=mask)
    if not mask.all() or max(float(work.max()), -float(work.min())) >= 2**62:
        return False
    np.copyto(lattice, work, casting="unsafe")  # values are integral: cast is exact
    return True


def dequantize_abs(q: np.ndarray, eb: float) -> np.ndarray:
    """Reconstruct values from lattice integers."""
    eb = check_positive(eb, "eb")
    return np.asarray(q, dtype=np.float64) * (2.0 * eb)


def pw_rel_to_log_abs(rel_eb: float) -> float:
    """Absolute log-space bound equivalent to a pointwise relative bound.

    With ``y = ln x`` and ``|y - y'| <= a``, the reconstruction satisfies
    ``|x' / x - 1| <= e**a - 1``; choosing ``a = ln(1 + rel_eb)`` makes
    the relative error at most ``rel_eb`` on the high side and tighter on
    the low side.
    """
    rel_eb = check_positive(rel_eb, "rel_eb")
    return float(np.log1p(rel_eb))


@dataclass
class QuantizedResiduals:
    """Bounded quantization codes plus the outlier channel.

    Attributes
    ----------
    codes:
        1-D non-negative ints in ``[0, 2*radius)``; the value 0 marks an
        outlier slot.
    outlier_positions:
        Flat indices into ``codes`` whose residual did not fit.
    outlier_values:
        The exact int64 residuals for those positions.
    radius:
        Code offset; residual r maps to code ``r + radius``.
    """

    codes: np.ndarray
    outlier_positions: np.ndarray
    outlier_values: np.ndarray
    radius: int


def encode_residuals(residuals: np.ndarray, radius: int = DEFAULT_RADIUS) -> QuantizedResiduals:
    """Map int64 residuals to bounded codes + outlier channel."""
    if radius < 2:
        raise ValueError(f"radius must be >= 2, got {radius}")
    res = np.asarray(residuals, dtype=np.int64).ravel()
    codes = res + radius
    # A residual fits iff its code lands in [1, 2*radius - 1]; code 0 is
    # reserved as the outlier marker.
    fits = (codes >= 1) & (codes <= 2 * radius - 1)
    out_pos = np.flatnonzero(~fits)
    out_val = res[out_pos]
    codes[out_pos] = 0
    return QuantizedResiduals(
        codes=codes,
        outlier_positions=out_pos.astype(np.int64, copy=False),
        outlier_values=out_val,
        radius=radius,
    )


def encode_residuals_inplace(
    res: np.ndarray, radius: int, ws: Workspace
) -> QuantizedResiduals:
    """Fused :func:`encode_residuals` that turns ``res`` into its codes.

    ``res`` must be a flat contiguous int64 workspace view of residuals;
    it is overwritten with the bounded codes (values identical to
    :func:`encode_residuals`).  Only the (normally tiny) outlier channel
    is freshly allocated; the masks come from the workspace.
    """
    if radius < 2:
        raise ValueError(f"radius must be >= 2, got {radius}")
    res += radius  # codes with offset, in place
    fits = ws.request("fits_mask", res.shape, np.bool_)
    misfit = ws.request("misfit_mask", res.shape, np.bool_)
    np.greater_equal(res, 1, out=fits)
    np.less_equal(res, 2 * radius - 1, out=misfit)
    np.logical_and(fits, misfit, out=fits)
    np.logical_not(fits, out=misfit)
    out_pos = np.flatnonzero(misfit)
    out_val = res[out_pos]
    out_val -= radius  # back to the original residuals
    res[out_pos] = 0
    return QuantizedResiduals(
        codes=res,
        outlier_positions=out_pos.astype(np.int64, copy=False),
        outlier_values=out_val,
        radius=radius,
    )


def encode_residuals_batch(
    res: np.ndarray,
    radius: int,
    fits: np.ndarray | None = None,
    misfit: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched :func:`encode_residuals_inplace` over a ``(B, n)`` stack.

    ``res`` holds one flattened block of int64 Lorenzo residuals per row
    and is overwritten with the bounded codes; the ufunc sequence is the
    same as the single-block path so each row's codes are byte-identical
    to ``encode_residuals_inplace(res[b], ...)``.  Returns
    ``(counts, positions, values)`` where ``counts[b]`` is block ``b``'s
    outlier count and ``positions``/``values`` concatenate the per-block
    within-block flat indices and exact residuals in block order.
    ``fits``/``misfit`` are optional bool scratch of ``res``'s shape;
    device backends ignore them.
    """
    if radius < 2:
        raise ValueError(f"radius must be >= 2, got {radius}")
    n_blocks, block_len = res.shape
    res += radius  # codes with offset, in place
    if fits is None:
        fits = np.empty(res.shape, dtype=np.bool_)
    if misfit is None:
        misfit = np.empty(res.shape, dtype=np.bool_)
    np.greater_equal(res, 1, out=fits)
    np.less_equal(res, 2 * radius - 1, out=misfit)
    np.logical_and(fits, misfit, out=fits)
    np.logical_not(fits, out=misfit)
    flat = res.reshape(-1)
    idx = np.flatnonzero(misfit.reshape(-1))
    val = flat[idx]
    val -= radius  # back to the original residuals
    flat[idx] = 0
    block_ids = idx // block_len
    counts = np.bincount(block_ids, minlength=n_blocks).astype(np.int64, copy=False)
    pos = idx - block_ids * block_len
    return counts, pos.astype(np.int64, copy=False), val


def decode_residuals(qr: QuantizedResiduals) -> np.ndarray:
    """Invert :func:`encode_residuals` back to int64 residuals."""
    res = np.subtract(qr.codes, qr.radius, dtype=np.int64)
    if qr.outlier_positions.size:
        res[qr.outlier_positions] = qr.outlier_values
    return res
