"""Compression statistics and aggregation across partitions.

The experiments compare *overall* bit rate / compression ratio over a
whole snapshot compressed as many per-rank partitions; this module does
that bookkeeping.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.compression.sz import CompressedBlock

__all__ = [
    "bit_rate",
    "compression_ratio",
    "max_abs_error",
    "max_pointwise_rel_error",
    "CompressionStats",
]


def bit_rate(nbytes: int, n_elements: int) -> float:
    """Average stored bits per value."""
    if n_elements <= 0:
        raise ValueError(f"n_elements must be positive, got {n_elements}")
    return 8.0 * nbytes / n_elements


def compression_ratio(nbytes: int, n_elements: int, source_itemsize: int = 4) -> float:
    """Ratio of uncompressed to compressed size."""
    if nbytes <= 0:
        raise ValueError(f"nbytes must be positive, got {nbytes}")
    return source_itemsize * n_elements / nbytes


def max_abs_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Largest pointwise absolute deviation."""
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(reconstructed, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(np.max(np.abs(a - b)))


def max_pointwise_rel_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Largest pointwise relative deviation (requires nonzero original)."""
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(reconstructed, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if (a == 0).any():
        raise ValueError("relative error undefined: original contains zeros")
    return float(np.max(np.abs(b / a - 1.0)))


@dataclass
class CompressionStats:
    """Aggregate statistics over a collection of compressed partitions."""

    n_blocks: int
    total_elements: int
    total_nbytes: int
    source_itemsize: int
    per_block_bit_rates: np.ndarray
    per_block_ratios: np.ndarray

    @classmethod
    def from_blocks(cls, blocks: Sequence[CompressedBlock]) -> "CompressionStats":
        if not blocks:
            raise ValueError("need at least one compressed block")
        itemsizes = {b.source_itemsize for b in blocks}
        if len(itemsizes) != 1:
            raise ValueError(f"mixed source itemsizes: {sorted(itemsizes)}")
        return cls(
            n_blocks=len(blocks),
            total_elements=sum(b.n_elements for b in blocks),
            total_nbytes=sum(b.nbytes for b in blocks),
            source_itemsize=itemsizes.pop(),
            per_block_bit_rates=np.array([b.bit_rate for b in blocks]),
            per_block_ratios=np.array([b.ratio for b in blocks]),
        )

    @property
    def overall_bit_rate(self) -> float:
        return bit_rate(self.total_nbytes, self.total_elements)

    @property
    def overall_ratio(self) -> float:
        return compression_ratio(self.total_nbytes, self.total_elements, self.source_itemsize)
