"""Device-ready array kernels behind the batched compress hot path.

The cuSZ decomposition ("Understanding GPU-Based Lossy Compression for
Extreme-Scale Cosmological Simulations", arXiv:2004.00224) shows the
whole SZ pipeline is block-parallelizable end to end.  This module pins
that down as a *narrow array-API boundary*: :class:`ArrayKernels` is the
set of batched operations the compressor's hot path needs — quantize,
Lorenzo predict/encode, residual narrowing, zigzag, byte-plane split —
expressed over ``(B, n)`` / ``(B, nx, ny, nz)`` stacks of same-shape
blocks so a backend can process every block of a field in one pass.

Design rules that keep the boundary device-ready:

- Kernels never raise on data pathologies; they *report* (e.g.
  :meth:`ArrayKernels.quantize` returns ``False``) and the host decides.
  A device backend can reduce a flag without host round-trips.
- Host-side scratch arrays (``mask``/``fits``/``misfit``/``scratch``)
  are optional hints a backend may ignore; device backends manage their
  own memory.
- The *error-bound space mapping* (``/ 2eb``, ``log``) is **not** a
  kernel: transcendentals differ in the last ulp across math libraries,
  and byte-identical payloads across backends are a hard contract here.
  The compressor keeps that mapping in NumPy on every backend and hands
  kernels only exactly-rounded IEEE and integer operations (``rint``,
  casts, int64 adds/subtracts), which are bit-identical everywhere.

Backends register by name; ``get_kernels("auto")`` prefers the optional
Numba backend (:mod:`repro.compression._kernels_numba`,
``@njit(parallel=True)``) when importable and silently degrades to the
pure-NumPy reference otherwise.  Payload byte-identity across backends
is property-tested in ``tests/compression/test_kernels.py``.
"""

from __future__ import annotations

import importlib.util
from typing import Protocol, runtime_checkable

import numpy as np

from repro.compression.lorenzo import lorenzo_transform_batch_inplace
from repro.compression.quantizer import encode_residuals_batch, quantize_lattice_batch

__all__ = [
    "KERNEL_CHOICES",
    "ArrayKernels",
    "NumpyKernels",
    "register_kernels",
    "available_kernels",
    "get_kernels",
    "zigzag",
    "unzigzag",
]

#: Valid values for the ``kernels=`` spec key.
KERNEL_CHOICES = ("auto", "numpy", "numba")


def zigzag(values: np.ndarray) -> np.ndarray:
    """Map signed int64 to non-negative ints (0,-1,1,-2,... -> 0,1,2,3,...)."""
    v = np.asarray(values, dtype=np.int64)
    return ((v << 1) ^ (v >> 63)).astype(np.uint64)


def unzigzag(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag`."""
    v = np.asarray(values, dtype=np.uint64)
    return ((v >> 1).astype(np.int64)) ^ -(v & 1).astype(np.int64)


@runtime_checkable
class ArrayKernels(Protocol):
    """The batched array operations the compress hot path is built on.

    Every method operates on stacks of same-shape blocks; scratch
    parameters are host-memory hints that device backends may ignore.
    Implementations must be *bit-identical* to :class:`NumpyKernels`
    (the reference) — payload bytes are contract, not best-effort.
    """

    name: str

    def quantize(
        self, work: np.ndarray, lattice: np.ndarray, mask: np.ndarray | None = None
    ) -> bool:
        """Round ``work`` (``(B, n)`` float64, already in lattice units)
        in place and exact-cast into int64 ``lattice``.  Returns
        ``False`` when any value is non-finite or outside the int64-safe
        range (caller raises)."""
        ...

    def lorenzo(self, lattice: np.ndarray, scratch: np.ndarray | None = None) -> None:
        """Lorenzo residual transform of a ``(B, nx, ny, nz)`` int64
        stack, in place, over the block axes only (length-1 axes are the
        identity, so trailing singleton padding is free)."""
        ...

    def encode_residuals(
        self,
        res: np.ndarray,
        radius: int,
        fits: np.ndarray | None = None,
        misfit: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Turn ``(B, n)`` int64 residuals into bounded codes in place;
        return ``(counts, positions, values)`` of the outlier channel
        (positions are within-block flat indices, concatenated in block
        order)."""
        ...

    def narrow(self, src: np.ndarray, out: np.ndarray) -> None:
        """Exact-cast copy of ``src`` into the narrower ``out``."""
        ...

    def zigzag(self, values: np.ndarray) -> np.ndarray:
        """Signed int64 -> non-negative uint64 (interleaved)."""
        ...

    def unzigzag(self, values: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`zigzag`."""
        ...

    def byte_planes(self, values: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Split unsigned ``values`` (``(n,)``, itemsize k) into ``out``
        (``(k, n)`` uint8) little-endian planes — the layout GPU entropy
        stages consume."""
        ...


class NumpyKernels:
    """Pure-NumPy reference implementation — the byte-identity oracle."""

    name = "numpy"

    def quantize(
        self, work: np.ndarray, lattice: np.ndarray, mask: np.ndarray | None = None
    ) -> bool:
        return quantize_lattice_batch(work, lattice, mask)

    def lorenzo(self, lattice: np.ndarray, scratch: np.ndarray | None = None) -> None:
        lorenzo_transform_batch_inplace(lattice, scratch)

    def encode_residuals(
        self,
        res: np.ndarray,
        radius: int,
        fits: np.ndarray | None = None,
        misfit: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return encode_residuals_batch(res, radius, fits, misfit)

    def narrow(self, src: np.ndarray, out: np.ndarray) -> None:
        np.copyto(out, src, casting="unsafe")

    def zigzag(self, values: np.ndarray) -> np.ndarray:
        return zigzag(values)

    def unzigzag(self, values: np.ndarray) -> np.ndarray:
        return unzigzag(values)

    def byte_planes(self, values: np.ndarray, out: np.ndarray) -> np.ndarray:
        v = np.asarray(values)
        k = v.dtype.itemsize
        if v.ndim != 1 or v.dtype.kind != "u":
            raise ValueError(f"byte_planes expects 1-D unsigned ints, got {v.dtype}")
        if out.shape != (k, v.size) or out.dtype != np.uint8:
            raise ValueError(
                f"out must be uint8 of shape {(k, v.size)}, got "
                f"{out.dtype} {out.shape}"
            )
        for plane in range(k):
            np.copyto(out[plane], (v >> (8 * plane)) & 0xFF, casting="unsafe")
        return out

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


# -- registry ----------------------------------------------------------------

_BACKENDS: dict[str, ArrayKernels] = {}

#: Numba import attempted and failed — probe once, degrade forever after.
_NUMBA_FAILED = False


def register_kernels(impl: ArrayKernels) -> ArrayKernels:
    """Register a kernel backend instance under ``impl.name``."""
    if not isinstance(impl, ArrayKernels):
        raise TypeError(f"expected an ArrayKernels implementation, got {impl!r}")
    _BACKENDS[impl.name] = impl
    return impl


register_kernels(NumpyKernels())


def _load_numba_kernels() -> "ArrayKernels | None":
    """Import, instantiate and cache the Numba backend; ``None`` when
    numba is absent or broken (the probe result is sticky)."""
    global _NUMBA_FAILED
    impl = _BACKENDS.get("numba")
    if impl is not None:
        return impl
    if _NUMBA_FAILED or importlib.util.find_spec("numba") is None:
        return None
    try:
        from repro.compression._kernels_numba import NumbaKernels
    except ImportError:  # pragma: no cover - requires a broken numba install
        _NUMBA_FAILED = True
        return None
    return register_kernels(NumbaKernels())


def available_kernels() -> tuple[str, ...]:
    """Backend names selectable in this environment (cheap probe: the
    numba entry appears when the package is importable, without paying
    the import)."""
    names = dict.fromkeys(_BACKENDS)
    if (
        "numba" not in names
        and not _NUMBA_FAILED
        and importlib.util.find_spec("numba") is not None
    ):
        names["numba"] = None
    return tuple(names)


def _note_resolution(requested: str, resolved: str) -> None:
    """Record a backend-resolution event (armed runs only): a counter
    per (requested, resolved) pair plus a gauge naming the last pick, so
    traces show when ``auto`` silently degraded to the NumPy reference."""
    from repro import telemetry  # lazy: telemetry is a leaf, this module is not

    if telemetry.enabled():
        reg = telemetry.get_registry()
        reg.counter(f"kernels.resolve.{requested}->{resolved}").inc()
        reg.gauge("kernels.backend_is_numba").set(1.0 if resolved == "numba" else 0.0)


def get_kernels(name: str = "auto") -> ArrayKernels:
    """Resolve a kernel backend by spec key.

    ``"auto"`` prefers numba when importable and degrades silently to
    the NumPy reference; asking for ``"numba"`` explicitly raises when
    it is unavailable.
    """
    if name == "auto":
        impl = _load_numba_kernels()
        resolved = impl if impl is not None else _BACKENDS["numpy"]
        _note_resolution(name, resolved.name)
        return resolved
    if name == "numba":
        impl = _load_numba_kernels()
        if impl is None:
            raise ValueError(
                "kernels='numba' requested but numba is not importable in this "
                "environment; install numba or select kernels='auto'/'numpy'"
            )
        _note_resolution(name, impl.name)
        return impl
    try:
        impl = _BACKENDS[name]
        _note_resolution(name, impl.name)
        return impl
    except KeyError:
        raise ValueError(
            f"unknown kernels backend {name!r}; options: "
            f"{tuple(KERNEL_CHOICES)} or a registered name {tuple(_BACKENDS)}"
        ) from None
