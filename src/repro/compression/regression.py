"""Block-wise linear-regression predictor (SZ2's second predictor).

SZ's adaptive stage (§2.2, [Liang et al. 2018]) chooses per block
between the Lorenzo predictor and a fitted hyperplane
``f(i, j, k) = b0 + b1*i + b2*j + b3*k``.  The hyperplane wins on
smooth-but-sloped data where Lorenzo's residuals carry the local noise
twice.

This module implements that predictor in the dual-quantization setting:

- the field is tiled into ``block``-sized cubes,
- per cube, the four regression coefficients have *closed-form*
  least-squares solutions (the design matrix is fixed, so its
  pseudo-inverse reduces to three first-moment sums — fully vectorized
  across blocks),
- coefficients are themselves quantized (so the decoder reproduces the
  identical prediction) and charged to the stream,
- per block, the cheaper of {Lorenzo, regression} is selected by
  residual magnitude, with a one-bit-per-block mode mask.

The public entry point is :class:`AdaptiveSZCompressor`, a drop-in
alternative to :class:`repro.compression.sz.SZCompressor` (``abs`` mode).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.compression.codecs import Codec, get_codec
from repro.compression.lorenzo import lorenzo_inverse, lorenzo_transform
from repro.compression.quantizer import (
    DEFAULT_RADIUS,
    decode_residuals,
    dequantize_abs,
    encode_residuals,
    quantize_abs,
)
from repro.compression.sz import HEADER_BYTES, _unzigzag, _zigzag
from repro.util.validation import check_positive

__all__ = ["AdaptiveSZCompressor", "AdaptiveBlockStream", "regression_coefficients"]

_COEF_QUANT = 64  # coefficient lattice: stored as round(beta * _COEF_QUANT)


def _block_axes(block: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    idx = np.arange(block, dtype=np.float64) - (block - 1) / 2.0
    i = idx[:, None, None]
    j = idx[None, :, None]
    k = idx[None, None, :]
    return i, j, k


def regression_coefficients(blocks: np.ndarray) -> np.ndarray:
    """Closed-form least-squares hyperplane per block.

    ``blocks`` has shape ``(n, b, b, b)``; returns ``(n, 4)`` rows of
    ``[b0, b1, b2, b3]`` for the centred coordinates, i.e.
    ``pred = b0 + b1*(i - c) + b2*(j - c) + b3*(k - c)``.

    With centred coordinates the normal equations are diagonal:
    ``b0 = mean``, ``b_d = sum(x_d * v) / sum(x_d^2)``.
    """
    n, b, _, _ = blocks.shape
    i, j, k = _block_axes(b)
    denom = float((i**2).sum() * b * b)  # sum over the cube of i^2
    vals = blocks.astype(np.float64)
    b0 = vals.mean(axis=(1, 2, 3))
    b1 = (vals * i).sum(axis=(1, 2, 3)) / denom
    b2 = (vals * j).sum(axis=(1, 2, 3)) / denom
    b3 = (vals * k).sum(axis=(1, 2, 3)) / denom
    return np.stack([b0, b1, b2, b3], axis=1)


def _predict(coeffs: np.ndarray, block: int) -> np.ndarray:
    """Hyperplane prediction per block from ``(n, 4)`` coefficients."""
    i, j, k = _block_axes(block)
    return (
        coeffs[:, 0][:, None, None, None]
        + coeffs[:, 1][:, None, None, None] * i
        + coeffs[:, 2][:, None, None, None] * j
        + coeffs[:, 3][:, None, None, None] * k
    )


def _tile(arr: np.ndarray, block: int) -> np.ndarray:
    nx, ny, nz = (s // block for s in arr.shape)
    t = arr.reshape(nx, block, ny, block, nz, block)
    return t.transpose(0, 2, 4, 1, 3, 5).reshape(-1, block, block, block)


def _untile(blocks: np.ndarray, shape: tuple[int, int, int], block: int) -> np.ndarray:
    nx, ny, nz = (s // block for s in shape)
    t = blocks.reshape(nx, ny, nz, block, block, block)
    return t.transpose(0, 3, 1, 4, 2, 5).reshape(shape)


@dataclass
class AdaptiveBlockStream:
    """Compressed stream of the adaptive-predictor compressor."""

    shape: tuple[int, int, int]
    source_itemsize: int
    eb: float
    block: int
    codec_name: str
    radius: int
    n_outliers: int
    payloads: dict[str, bytes]

    @property
    def n_elements(self) -> int:
        return int(np.prod(self.shape))

    @property
    def nbytes(self) -> int:
        return HEADER_BYTES + sum(len(b) for b in self.payloads.values())

    @property
    def bit_rate(self) -> float:
        return 8.0 * self.nbytes / self.n_elements

    @property
    def ratio(self) -> float:
        return self.source_itemsize * self.n_elements / self.nbytes


class AdaptiveSZCompressor:
    """SZ2-style compressor: per-block Lorenzo vs linear regression.

    Operates in ``abs`` mode on 3-D data whose dimensions divide the
    block size.  The error-bound contract is identical to
    :class:`repro.compression.sz.SZCompressor`.
    """

    def __init__(
        self,
        block: int = 8,
        codec: str | Codec = "zlib",
        radius: int = DEFAULT_RADIUS,
    ) -> None:
        if block < 2:
            raise ValueError(f"block must be >= 2, got {block}")
        self.block = int(block)
        self.codec = get_codec(codec)
        self.radius = int(radius)

    # -- compress ----------------------------------------------------------

    def compress(self, data: np.ndarray, eb: float) -> AdaptiveBlockStream:
        arr = np.asarray(data)
        if arr.ndim != 3:
            raise ValueError(f"AdaptiveSZCompressor expects 3-D data, got {arr.ndim}-D")
        if any(s % self.block for s in arr.shape):
            raise ValueError(
                f"shape {arr.shape} does not divide into {self.block}^3 blocks"
            )
        eb = check_positive(eb, "eb")
        source_itemsize = arr.dtype.itemsize if arr.dtype.kind == "f" else 8

        q = quantize_abs(np.asarray(arr, dtype=np.float64), eb)
        tiles = _tile(q, self.block)

        # Candidate 1: Lorenzo residuals (per block, zero boundary).
        lor = np.stack([lorenzo_transform(t) for t in tiles])
        # Candidate 2: regression residuals with quantized coefficients.
        coeffs = regression_coefficients(tiles)
        qcoeffs = np.rint(coeffs * _COEF_QUANT).astype(np.int64)
        pred = np.rint(_predict(qcoeffs / _COEF_QUANT, self.block)).astype(np.int64)
        reg = tiles - pred

        # Selection: estimated bits per block.  log2(1+|r|) approximates
        # the code length of a residual under a Laplacian-shaped entropy
        # coder; regression additionally pays for its 4 coefficients.
        def bits(residuals: np.ndarray) -> np.ndarray:
            return np.log2(1.0 + np.abs(residuals)).reshape(len(tiles), -1).sum(axis=1)

        cost_lor = bits(lor)
        cost_reg = bits(reg) + np.log2(1.0 + np.abs(qcoeffs)).sum(axis=1)
        use_reg = cost_reg < cost_lor

        residuals = np.where(use_reg[:, None, None, None], reg, lor)
        qr = encode_residuals(residuals.ravel(), self.radius)
        payloads = {
            "codes": self.codec.encode(qr.codes),
            "modes": zlib.compress(np.packbits(use_reg).tobytes(), 6),
            "coeffs": zlib.compress(_zigzag(qcoeffs[use_reg].ravel()).tobytes(), 6),
            "outlier_pos": zlib.compress(qr.outlier_positions.tobytes(), 6),
            "outlier_val": zlib.compress(_zigzag(qr.outlier_values).tobytes(), 6),
        }
        return AdaptiveBlockStream(
            shape=tuple(arr.shape),
            source_itemsize=source_itemsize,
            eb=float(eb),
            block=self.block,
            codec_name=self.codec.name,
            radius=self.radius,
            n_outliers=int(qr.outlier_positions.size),
            payloads=payloads,
        )

    # -- decompress -----------------------------------------------------------

    def decompress(self, stream: AdaptiveBlockStream) -> np.ndarray:
        n = stream.n_elements
        codec = get_codec(stream.codec_name)
        codes = codec.decode(stream.payloads["codes"], n)
        out_pos = np.frombuffer(
            zlib.decompress(stream.payloads["outlier_pos"]), dtype=np.int64
        )
        out_val = _unzigzag(
            np.frombuffer(zlib.decompress(stream.payloads["outlier_val"]), dtype=np.uint64)
        )
        from repro.compression.quantizer import QuantizedResiduals

        qr = QuantizedResiduals(codes, out_pos, out_val, stream.radius)
        nblocks = n // stream.block**3
        residuals = decode_residuals(qr).reshape(nblocks, stream.block, stream.block, stream.block)

        use_reg = np.unpackbits(
            np.frombuffer(zlib.decompress(stream.payloads["modes"]), dtype=np.uint8),
            count=nblocks,
        ).astype(bool)
        qcoeffs_flat = _unzigzag(
            np.frombuffer(zlib.decompress(stream.payloads["coeffs"]), dtype=np.uint64)
        )
        qcoeffs = qcoeffs_flat.reshape(-1, 4)

        tiles = np.empty_like(residuals)
        # Lorenzo blocks: cumulative-sum inversion.
        for idx in np.flatnonzero(~use_reg):
            tiles[idx] = lorenzo_inverse(residuals[idx])
        # Regression blocks: add back the quantized hyperplane.
        reg_idx = np.flatnonzero(use_reg)
        if len(reg_idx):
            pred = np.rint(
                _predict(qcoeffs.astype(np.float64) / _COEF_QUANT, stream.block)
            ).astype(np.int64)
            tiles[reg_idx] = residuals[reg_idx] + pred

        q = _untile(tiles, stream.shape, stream.block)
        return dequantize_abs(q, stream.eb)
