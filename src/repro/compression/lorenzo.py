"""The Lorenzo predictor as an invertible integer transform.

SZ predicts each point from its causal neighbours with the Lorenzo
predictor [Ibarria et al. 2003].  For an n-D array the prediction
residual equals the n-fold mixed first difference::

    1-D: r[i]     = d[i] - d[i-1]
    2-D: r[i,j]   = d[i,j] - d[i-1,j] - d[i,j-1] + d[i-1,j-1]
    3-D: r[i,j,k] = d - (neighbours with inclusion-exclusion signs)

i.e. applying ``diff`` (with a zero boundary) once along every axis.
That formulation is exactly invertible on integers (``cumsum`` along the
axes in reverse order) and fully vectorizable — which is why cuSZ
quantizes *first* and runs Lorenzo on the integer lattice ("dual
quantization").  This module implements the transform pair used by the
compressor's default (cuSZ-style) engine, plus the classic sequential
CPU-SZ predictor loop for equivalence testing.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "lorenzo_transform",
    "lorenzo_transform_inplace",
    "lorenzo_transform_batch_inplace",
    "lorenzo_inverse",
    "classic_sz_quantize",
]


def _mixed_difference_inplace(
    arr: np.ndarray, axes: "tuple[int, ...] | range", scratch: np.ndarray
) -> np.ndarray:
    """First difference (zero boundary) along each of ``axes``, in place.

    The shared core of the single-block and batched transforms: each
    axis's ``hi - lo`` runs through one reusable ``scratch`` buffer
    instead of ``np.diff``'s per-axis output allocations.  Length-1 axes
    are skipped (their zero-boundary diff is the identity), which is
    also what makes trailing singleton padding a no-op for the batched
    3-D normalization.
    """
    flat_scratch = scratch.reshape(-1)
    for axis in axes:
        if arr.shape[axis] < 2:
            continue
        upper = tuple(
            slice(1, None) if ax == axis else slice(None) for ax in range(arr.ndim)
        )
        lower = tuple(
            slice(None, -1) if ax == axis else slice(None) for ax in range(arr.ndim)
        )
        hi = arr[upper]
        tmp = flat_scratch[: hi.size].reshape(hi.shape)
        np.subtract(hi, arr[lower], out=tmp)
        hi[...] = tmp
    return arr


def lorenzo_transform(data: np.ndarray) -> np.ndarray:
    """Residuals of the n-D Lorenzo predictor (zero boundary condition).

    Works on any integer or float array; for the compressor it is applied
    to the int64 quantization lattice so the round trip is exact.
    """
    arr = np.asarray(data)
    if arr.ndim < 1 or arr.ndim > 3:
        raise ValueError(f"lorenzo_transform supports 1-3 dimensions, got {arr.ndim}")
    return lorenzo_transform_inplace(np.array(arr))


def lorenzo_transform_inplace(arr: np.ndarray, scratch: np.ndarray | None = None) -> np.ndarray:
    """Apply the Lorenzo residual transform to ``arr`` *in place*.

    The per-axis first difference is computed through one reusable
    ``scratch`` buffer (same dtype, at least ``arr.size`` elements)
    instead of ``np.diff``'s per-axis output allocations — the values
    are identical to :func:`lorenzo_transform`, element for element.
    Returns ``arr`` for chaining.
    """
    if arr.ndim < 1 or arr.ndim > 3:
        raise ValueError(f"lorenzo_transform supports 1-3 dimensions, got {arr.ndim}")
    if scratch is None:
        scratch = np.empty(arr.size, dtype=arr.dtype)
    elif scratch.dtype != arr.dtype or scratch.size < arr.size:
        raise ValueError(
            f"scratch must provide >= {arr.size} elements of dtype {arr.dtype}"
        )
    return _mixed_difference_inplace(arr, range(arr.ndim), scratch)


def lorenzo_transform_batch_inplace(
    batch: np.ndarray, scratch: np.ndarray | None = None
) -> np.ndarray:
    """Lorenzo-transform every block of a ``(B, ...)`` stack in place.

    ``batch`` stacks same-shape blocks along a leading batch axis; the
    transform runs over the trailing (block) axes only, so the result of
    row ``b`` is element-for-element identical to
    ``lorenzo_transform_inplace(batch[b])``.  This is the one-pass
    multi-block kernel behind the batched compress path: each per-axis
    difference is a single strided ufunc over the whole stack instead of
    one Python-level call per block.
    """
    if batch.ndim < 2 or batch.ndim > 4:
        raise ValueError(
            f"batched lorenzo expects (B, 1-3 block dims), got {batch.ndim}-D"
        )
    if scratch is None:
        scratch = np.empty(batch.size, dtype=batch.dtype)
    elif scratch.dtype != batch.dtype or scratch.size < batch.size:
        raise ValueError(
            f"scratch must provide >= {batch.size} elements of dtype {batch.dtype}"
        )
    return _mixed_difference_inplace(batch, range(1, batch.ndim), scratch)


def lorenzo_inverse(residuals: np.ndarray) -> np.ndarray:
    """Invert :func:`lorenzo_transform` (cumulative sums in reverse order)."""
    arr = np.asarray(residuals)
    if arr.ndim < 1 or arr.ndim > 3:
        raise ValueError(f"lorenzo_inverse supports 1-3 dimensions, got {arr.ndim}")
    out = arr
    for axis in reversed(range(arr.ndim)):
        out = np.cumsum(out, axis=axis)
    return out


def classic_sz_quantize(
    data: np.ndarray, eb: float, radius: int
) -> tuple[np.ndarray, np.ndarray]:
    """Classic CPU-SZ: predict from *reconstructed* neighbours, then quantize.

    Returns ``(codes, reconstruction)``.  ``codes`` holds
    ``residual/(2 eb)`` offsets shifted by ``radius`` (0 marks an outlier
    whose exact value must be stored separately — here the reconstruction
    simply keeps the original value, as SZ does for unpredictable data).

    This is the sequential reference implementation (Python loop); it is
    only used on small arrays in tests and the quant-order ablation to
    demonstrate that the dual-quantization engine reproduces the same
    uniform error distribution the paper models (§3.2, Fig. 3).
    """
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim != 3:
        raise ValueError(f"classic_sz_quantize expects a 3-D array, got {arr.ndim}-D")
    if eb <= 0:
        raise ValueError(f"error bound must be positive, got {eb}")
    nx, ny, nz = arr.shape
    recon = np.zeros((nx + 1, ny + 1, nz + 1), dtype=np.float64)
    codes = np.zeros(arr.shape, dtype=np.int64)
    two_eb = 2.0 * eb
    max_offset = radius - 1
    for i in range(nx):
        for j in range(ny):
            for k in range(nz):
                pred = (
                    recon[i, j + 1, k + 1]
                    + recon[i + 1, j, k + 1]
                    + recon[i + 1, j + 1, k]
                    - recon[i, j, k + 1]
                    - recon[i, j + 1, k]
                    - recon[i + 1, j, k]
                    + recon[i, j, k]
                )
                diff = arr[i, j, k] - pred
                q = int(np.rint(diff / two_eb))
                if abs(q) > max_offset:
                    codes[i, j, k] = 0  # outlier marker
                    recon[i + 1, j + 1, k + 1] = arr[i, j, k]
                else:
                    codes[i, j, k] = q + radius
                    recon[i + 1, j + 1, k + 1] = pred + q * two_eb
    return codes, recon[1:, 1:, 1:]
