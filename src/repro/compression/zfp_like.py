"""A fixed-rate transform codec in the spirit of ZFP.

The paper chose SZ over ZFP because ZFP's fixed-rate mode cannot enforce
an absolute error bound (§2.2).  To let the benchmarks demonstrate that
trade-off we include a simplified ZFP-style codec:

- the field is tiled into 4x4x4 blocks,
- each block is normalized by a per-block binary exponent and converted
  to fixed point,
- an invertible integer S-transform (Haar-like lifting) decorrelates the
  block along every axis,
- coefficients are truncated to a deterministic per-coefficient bit
  allocation that favours low-frequency terms, meeting the exact bit
  budget ``rate`` bits/value.

The result is a real fixed-rate codec with unbounded (data-dependent)
pointwise error — precisely the property the rate-quality optimizer
cannot work with, which the ablation bench demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = ["ZFPLikeCompressor", "ZFPBlockStream"]

_BLOCK = 4
_PRECISION = 28  # fixed-point fractional bits inside a block
#: Stored magnitude width.  Fixed-point values are bounded by 2**_PRECISION,
#: and each of the three lifting axes can double the high-band magnitude
#: (|a - b| <= 2|a|max), so transform coefficients reach 2**(_PRECISION + 3).
#: A narrower field silently clamps rare large coefficients, which is
#: unbounded reconstruction error, not graceful truncation.
_WIDTH = _PRECISION + 3


def _s_transform_pairs(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Invertible integer S-transform: (a, b) -> (floor((a+b)/2), a-b)."""
    low = (a + b) >> 1
    high = a - b
    return low, high


def _s_inverse_pairs(low: np.ndarray, high: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = low + ((high + 1) >> 1)
    b = a - high
    return a, b


def _forward_axis(blocks: np.ndarray, axis: int) -> np.ndarray:
    """Two lifting levels along ``axis`` (length 4 -> [ll, lh, h0, h1])."""
    v = np.moveaxis(blocks, axis, -1)
    a0, a1, a2, a3 = v[..., 0], v[..., 1], v[..., 2], v[..., 3]
    l0, h0 = _s_transform_pairs(a0, a1)
    l1, h1 = _s_transform_pairs(a2, a3)
    ll, lh = _s_transform_pairs(l0, l1)
    out = np.stack([ll, lh, h0, h1], axis=-1)
    return np.moveaxis(out, -1, axis)


def _inverse_axis(blocks: np.ndarray, axis: int) -> np.ndarray:
    v = np.moveaxis(blocks, axis, -1)
    ll, lh, h0, h1 = v[..., 0], v[..., 1], v[..., 2], v[..., 3]
    l0, l1 = _s_inverse_pairs(ll, lh)
    a0, a1 = _s_inverse_pairs(l0, h0)
    a2, a3 = _s_inverse_pairs(l1, h1)
    out = np.stack([a0, a1, a2, a3], axis=-1)
    return np.moveaxis(out, -1, axis)


def _coefficient_levels() -> np.ndarray:
    """Frequency level (0..6) of each coefficient in a 4x4x4 block.

    Along each axis positions map to levels [0, 1, 2, 2]; the block level
    is the sum, used to bias bit allocation toward low frequencies.
    """
    axis_level = np.array([0, 1, 2, 2])
    lv = axis_level[:, None, None] + axis_level[None, :, None] + axis_level[None, None, :]
    return lv


@lru_cache(maxsize=64)
def _bit_allocation(rate: float) -> np.ndarray:
    """Per-coefficient bit widths for a 4x4x4 block at ``rate`` bits/value.

    Deterministic water-filling: the budget (``64*rate`` bits) is spent
    one bit at a time on the lowest-level coefficient that currently has
    the fewest bits.  Keeping a coefficient costs its one sign bit too
    (charged when its first magnitude bit is granted), so the stored
    stream — ``sum(bits) + sign bits`` per block — adheres to the budget
    *exactly*: at most one bit per block goes unspent, and only when the
    remainder cannot pay for a new coefficient's sign.
    """
    budget = int(round(rate * _BLOCK**3))
    levels = _coefficient_levels().ravel()
    order = np.argsort(levels, kind="stable")
    bits = np.zeros(_BLOCK**3, dtype=np.int64)
    # Greedy rounds: sweep coefficients from low to high frequency, giving
    # each one bit per sweep, with low levels joining earlier sweeps.
    max_bits = _WIDTH
    done = False
    for sweep in range(max_bits):
        if done:
            break
        for idx in order:
            if budget <= 0:
                done = True
                break
            if bits[idx] >= max_bits:
                continue
            # Higher-frequency coefficients join later sweeps.
            if sweep < levels[idx]:
                continue
            # A coefficient's first bit also buys its sign bit.
            cost = 2 if bits[idx] == 0 else 1
            if budget < cost:
                continue
            bits[idx] += 1
            budget -= cost
    # The allocation is cached and shared across instances: freeze it.
    bits.flags.writeable = False
    return bits


@dataclass
class ZFPBlockStream:
    """Compressed representation of a field at fixed rate."""

    shape: tuple[int, ...]
    rate: float
    exponents: np.ndarray
    payload: bytes
    source_itemsize: int

    @property
    def n_elements(self) -> int:
        return int(np.prod(self.shape))

    @property
    def nbytes(self) -> int:
        return len(self.payload) + self.exponents.size * 2 + 32

    @property
    def bit_rate(self) -> float:
        return 8.0 * self.nbytes / self.n_elements

    @property
    def ratio(self) -> float:
        return self.source_itemsize * self.n_elements / self.nbytes


class ZFPLikeCompressor:
    """Fixed-rate block-transform compressor (ZFP-style comparator).

    Parameters
    ----------
    rate:
        Target bits per value (>= 1).  The stored stream meets this
        budget exactly up to per-block exponent metadata.
    """

    def __init__(self, rate: float = 8.0) -> None:
        if rate < 1.0:
            raise ValueError(f"rate must be >= 1 bit/value, got {rate}")
        self.rate = float(rate)
        self._bits = _bit_allocation(rate)

    def compress(self, data: np.ndarray) -> ZFPBlockStream:
        arr = np.asarray(data, dtype=np.float64)
        if arr.ndim != 3:
            raise ValueError(f"ZFPLikeCompressor expects 3-D data, got {arr.ndim}-D")
        source_itemsize = (
            np.asarray(data).dtype.itemsize if np.asarray(data).dtype.kind == "f" else 8
        )
        padded = _pad_to_blocks(arr)
        blocks = _tile(padded)  # (nblocks, 4, 4, 4)

        absmax = np.abs(blocks).reshape(len(blocks), -1).max(axis=1)
        # Per-block binary exponent; empty (all-zero) blocks use exponent 0.
        exps = np.where(absmax > 0, np.ceil(np.log2(np.maximum(absmax, 1e-300))), 0.0)
        exps = exps.astype(np.int16)
        scale = np.exp2(_PRECISION - exps.astype(np.float64))[:, None, None, None]
        fixed = np.rint(blocks * scale).astype(np.int64)

        for axis in (1, 2, 3):
            fixed = _forward_axis(fixed, axis)

        coeffs = fixed.reshape(len(blocks), -1)
        payload = _pack_coeffs(coeffs, self._bits)
        return ZFPBlockStream(
            shape=tuple(arr.shape),
            rate=self.rate,
            exponents=exps,
            payload=payload,
            source_itemsize=source_itemsize,
        )

    def decompress(self, stream: ZFPBlockStream) -> np.ndarray:
        nblocks = stream.exponents.size
        coeffs = _unpack_coeffs(stream.payload, nblocks, self._bits)
        fixed = coeffs.reshape(nblocks, _BLOCK, _BLOCK, _BLOCK)
        for axis in (3, 2, 1):
            fixed = _inverse_axis(fixed, axis)
        scale = np.exp2(_PRECISION - stream.exponents.astype(np.float64))
        blocks = fixed.astype(np.float64) / scale[:, None, None, None]
        padded_shape = tuple(-(-s // _BLOCK) * _BLOCK for s in stream.shape)
        padded = _untile(blocks, padded_shape)
        sx, sy, sz = stream.shape
        return padded[:sx, :sy, :sz]


def _pad_to_blocks(arr: np.ndarray) -> np.ndarray:
    pads = [(0, (-s) % _BLOCK) for s in arr.shape]
    if any(p[1] for p in pads):
        return np.pad(arr, pads, mode="edge")
    return arr


def _tile(arr: np.ndarray) -> np.ndarray:
    nx, ny, nz = (s // _BLOCK for s in arr.shape)
    t = arr.reshape(nx, _BLOCK, ny, _BLOCK, nz, _BLOCK)
    return t.transpose(0, 2, 4, 1, 3, 5).reshape(-1, _BLOCK, _BLOCK, _BLOCK)


def _untile(blocks: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    nx, ny, nz = (s // _BLOCK for s in shape)
    t = blocks.reshape(nx, ny, nz, _BLOCK, _BLOCK, _BLOCK)
    return t.transpose(0, 3, 1, 4, 2, 5).reshape(shape)


def _pack_coeffs(coeffs: np.ndarray, bits: np.ndarray) -> bytes:
    """Truncate each coefficient to its allocation and bit-pack the stream.

    Layout per block: for every coefficient with ``b > 0`` bits, one sign
    bit followed by the ``b`` most significant of its magnitude's
    ``_WIDTH`` bits.
    """
    kept = bits > 0
    signs = (coeffs[:, kept] < 0).astype(np.uint8)
    mags = np.abs(coeffs[:, kept]).astype(np.uint64)
    width = _WIDTH
    mags = np.minimum(mags, (1 << width) - 1)

    chunks: list[np.ndarray] = []
    kept_bits = bits[kept]
    for col, b in enumerate(kept_bits):
        b = int(b)
        top = (mags[:, col] >> np.uint64(width - b)).astype(np.uint64)
        colbits = np.empty((len(coeffs), b + 1), dtype=np.uint8)
        colbits[:, 0] = signs[:, col]
        shifts = np.arange(b - 1, -1, -1, dtype=np.uint64)
        colbits[:, 1:] = ((top[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.uint8)
        chunks.append(colbits)
    allbits = np.concatenate(chunks, axis=1).ravel()
    return np.packbits(allbits).tobytes()


def _unpack_coeffs(payload: bytes, nblocks: int, bits: np.ndarray) -> np.ndarray:
    kept = bits > 0
    kept_bits = bits[kept].astype(np.int64)
    per_block = int((kept_bits + 1).sum())
    raw = np.unpackbits(np.frombuffer(payload, dtype=np.uint8), count=nblocks * per_block)
    mat = raw.reshape(nblocks, per_block)
    width = _WIDTH
    coeffs = np.zeros((nblocks, len(bits)), dtype=np.int64)
    pos = 0
    kept_idx = np.flatnonzero(kept)
    for col, b in zip(kept_idx, kept_bits):
        b = int(b)
        sign = mat[:, pos].astype(np.int64)
        val = np.zeros(nblocks, dtype=np.uint64)
        for j in range(b):
            val = (val << np.uint64(1)) | mat[:, pos + 1 + j].astype(np.uint64)
        # Restore magnitude scale and add half an ulp of the truncated part
        # to centre the reconstruction (exactly-zero coefficients stay zero).
        mag = val.astype(np.int64) << (width - b)
        if width - b > 0:
            mag = np.where(mag > 0, mag + (1 << (width - b - 1)), 0)
        coeffs[:, col] = np.where(sign == 1, -mag, mag)
        pos += b + 1
    return coeffs
