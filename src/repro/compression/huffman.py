"""Canonical Huffman coding, built from scratch.

SZ's third stage entropy-codes the quantization integers with a
customized Huffman coder.  This module reimplements that stage:

- tree construction with :mod:`heapq` over the (small) symbol alphabet,
- *length-limited* codes (max length 16 by default) via iterative
  frequency flattening, so the decoder can use a single flat lookup
  table of ``2**max_len`` entries,
- canonical code assignment, so the table serializes as just the code
  lengths,
- a fully vectorized encoder (bit matrix + boolean mask + ``packbits``),
- a table-driven sequential decoder (the only per-symbol Python loop in
  the library; decode is off the hot path for the experiments).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.compression.bitstream import BitReader, pack_bits

__all__ = ["HuffmanTable", "build_code_lengths", "canonical_codewords"]

DEFAULT_MAX_CODE_LENGTH = 16


def build_code_lengths(freqs: np.ndarray, max_length: int = DEFAULT_MAX_CODE_LENGTH) -> np.ndarray:
    """Compute Huffman code lengths for ``freqs`` (zero-frequency symbols get 0).

    If the optimal tree exceeds ``max_length``, frequencies are halved
    (flattening the distribution) and the tree rebuilt — the same
    pragmatic length-limiting strategy zlib uses.  The resulting code is
    prefix-free and complete over the used symbols.
    """
    freqs = np.asarray(freqs, dtype=np.int64)
    if freqs.ndim != 1:
        raise ValueError(f"freqs must be 1-D, got shape {freqs.shape}")
    if (freqs < 0).any():
        raise ValueError("freqs must be non-negative")
    used = np.flatnonzero(freqs)
    lengths = np.zeros(len(freqs), dtype=np.uint8)
    if len(used) == 0:
        return lengths
    if len(used) == 1:
        lengths[used[0]] = 1
        return lengths
    if len(used) > (1 << max_length):
        raise ValueError(
            f"{len(used)} distinct symbols cannot all receive codes of "
            f"length <= {max_length}"
        )

    work = freqs.copy()
    while True:
        lens = _tree_code_lengths(work, used)
        if lens.max() <= max_length:
            lengths[used] = lens
            return lengths
        # Halve (rounding up so no used symbol drops to zero) and retry.
        # Terminates: once all frequencies reach 1 the tree is balanced
        # with depth ceil(log2(m)) <= max_length (guarded above).
        if (work[used] == 1).all():  # pragma: no cover - defensive
            raise RuntimeError("length limiting failed to converge")
        work[used] = (work[used] + 1) // 2


def _tree_code_lengths(freqs: np.ndarray, used: np.ndarray) -> np.ndarray:
    """Code lengths (aligned with ``used``) from a standard Huffman tree."""
    m = len(used)
    # Heap items: (freq, node_id). Leaves are 0..m-1; internal nodes get
    # increasing ids, so a parent's id always exceeds its children's.
    heap: list[tuple[int, int]] = [(int(freqs[s]), i) for i, s in enumerate(used)]
    heapq.heapify(heap)
    merges: list[tuple[int, int]] = []  # children of internal node m + k
    next_id = m
    while len(heap) > 1:
        f1, n1 = heapq.heappop(heap)
        f2, n2 = heapq.heappop(heap)
        merges.append((n1, n2))
        heapq.heappush(heap, (f1 + f2, next_id))
        next_id += 1
    # Top-down depth assignment: parents (higher ids) before children.
    depth = np.zeros(next_id, dtype=np.int64)
    for node_id in range(next_id - 1, m - 1, -1):
        left, right = merges[node_id - m]
        depth[left] = depth[node_id] + 1
        depth[right] = depth[node_id] + 1
    return depth[:m]


def canonical_codewords(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical codewords (right-aligned ints) for ``lengths``.

    Symbols are ordered by (length, symbol); codes of equal length are
    consecutive integers.  Zero-length symbols get codeword 0 (unused).
    """
    lengths = np.asarray(lengths, dtype=np.uint8)
    codewords = np.zeros(len(lengths), dtype=np.uint32)
    used = np.flatnonzero(lengths)
    if len(used) == 0:
        return codewords
    order = used[np.lexsort((used, lengths[used]))]
    code = 0
    prev_len = int(lengths[order[0]])
    for sym in order:
        cur_len = int(lengths[sym])
        code <<= cur_len - prev_len
        codewords[sym] = code
        code += 1
        prev_len = cur_len
    return codewords


@dataclass
class HuffmanTable:
    """A canonical Huffman code over the alphabet ``0..nsymbols-1``.

    Attributes
    ----------
    lengths:
        Per-symbol code length in bits (0 for unused symbols).
    codewords:
        Right-aligned canonical codewords.
    max_length:
        Longest code in the table; the decode table has ``2**max_length``
        entries.
    """

    lengths: np.ndarray
    codewords: np.ndarray

    def __post_init__(self) -> None:
        self.lengths = np.asarray(self.lengths, dtype=np.uint8)
        self.codewords = np.asarray(self.codewords, dtype=np.uint32)
        self.max_length = int(self.lengths.max()) if self.lengths.size else 0
        self._decode_sym: np.ndarray | None = None
        self._decode_len: np.ndarray | None = None

    @classmethod
    def from_frequencies(
        cls, freqs: np.ndarray, max_length: int = DEFAULT_MAX_CODE_LENGTH
    ) -> "HuffmanTable":
        lengths = build_code_lengths(freqs, max_length=max_length)
        return cls(lengths=lengths, codewords=canonical_codewords(lengths))

    @classmethod
    def from_lengths(cls, lengths: np.ndarray) -> "HuffmanTable":
        """Rebuild the table from serialized code lengths (canonical codes)."""
        lengths = np.asarray(lengths, dtype=np.uint8)
        return cls(lengths=lengths, codewords=canonical_codewords(lengths))

    # -- encode ---------------------------------------------------------

    def encode(self, symbols: np.ndarray) -> tuple[bytes, int]:
        """Encode ``symbols`` to a packed bitstream.

        Returns ``(blob, nbits)``.  Fully vectorized: builds an
        ``(n, max_length)`` bit matrix and selects the valid bits with a
        boolean mask, which NumPy flattens in row-major (i.e. stream)
        order.
        """
        symbols = np.asarray(symbols)
        if symbols.ndim != 1:
            raise ValueError(f"symbols must be 1-D, got shape {symbols.shape}")
        if symbols.size == 0:
            return b"", 0
        if symbols.min() < 0 or symbols.max() >= len(self.lengths):
            raise ValueError("symbol out of alphabet range")
        lens = self.lengths[symbols]
        if (lens == 0).any():
            raise ValueError("attempted to encode a symbol with no codeword")
        cw = self.codewords[symbols].astype(np.uint32)
        L = self.max_length
        # bit j (MSB-first) of a code of length l is (cw >> (l-1-j)) & 1.
        shift = lens[:, None].astype(np.int32) - 1 - np.arange(L, dtype=np.int32)[None, :]
        valid = shift >= 0
        bits = (cw[:, None] >> np.maximum(shift, 0).astype(np.uint32)) & 1
        flat = bits[valid].astype(np.uint8)
        return pack_bits(flat), int(flat.size)

    def encoded_nbits(self, symbols: np.ndarray) -> int:
        """Exact bit count :meth:`encode` would produce (without encoding)."""
        symbols = np.asarray(symbols)
        return int(self.lengths[symbols].astype(np.int64).sum())

    # -- decode ---------------------------------------------------------

    def _build_decode_table(self) -> None:
        L = self.max_length
        size = 1 << L
        sym_table = np.zeros(size, dtype=np.int32)
        len_table = np.zeros(size, dtype=np.uint8)
        for sym in np.flatnonzero(self.lengths):
            l = int(self.lengths[sym])
            cw = int(self.codewords[sym])
            lo = cw << (L - l)
            hi = (cw + 1) << (L - l)
            sym_table[lo:hi] = sym
            len_table[lo:hi] = l
        self._decode_sym = sym_table
        self._decode_len = len_table

    def decode(self, blob: bytes, nsymbols: int) -> np.ndarray:
        """Decode ``nsymbols`` symbols from a packed bitstream."""
        if nsymbols == 0:
            return np.empty(0, dtype=np.int64)
        if self.max_length == 0:
            raise ValueError("cannot decode with an empty table")
        if self._decode_sym is None:
            self._build_decode_table()
        assert self._decode_sym is not None and self._decode_len is not None
        sym_table = self._decode_sym.tolist()
        len_table = self._decode_len.tolist()
        L = self.max_length
        out = np.empty(nsymbols, dtype=np.int64)
        reader = BitReader(blob)
        peek = reader.peek
        consume = reader.consume
        for i in range(nsymbols):
            window = peek(L)
            code_len = len_table[window]
            if code_len == 0:
                raise ValueError("corrupt bitstream: no code matches window")
            out[i] = sym_table[window]
            consume(code_len)
        return out

    # -- serialization ---------------------------------------------------

    def serialize_lengths(self) -> bytes:
        """Serialize the table as its code-length array (canonical codes)."""
        return self.lengths.tobytes()

    @classmethod
    def deserialize_lengths(cls, blob: bytes) -> "HuffmanTable":
        return cls.from_lengths(np.frombuffer(blob, dtype=np.uint8))
