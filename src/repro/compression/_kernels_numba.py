"""Optional Numba backend for the batched compression kernels.

Imported lazily by :mod:`repro.compression.kernels` only when numba is
installed; nothing in the package imports this module directly, so the
dependency stays optional.  Each jitted kernel is ``parallel=True`` with
an outer ``prange`` over the block axis — the cuSZ mapping of one block
per thread-block, here one block per CPU thread.

Byte-identity with :class:`~repro.compression.kernels.NumpyKernels` is a
hard contract, which restricts these kernels to operations that are
bit-identical across compilers: ``np.rint`` (round-half-even), exact
float->int64 casts of integral values, and wrapping int64 arithmetic.
No ``fastmath``, ever — it licenses value-changing reassociation.
"""

from __future__ import annotations

import numpy as np
from numba import njit, prange

from repro.compression.kernels import NumpyKernels

__all__ = ["NumbaKernels"]

#: Lattice magnitude limit, matching the NumPy path's ``>= 2**62`` guard.
_LATTICE_LIMIT = float(2**62)


@njit(cache=True, parallel=True)
def _quantize(work, lattice):  # pragma: no cover - exercised via numba CI leg
    n_bad = 0
    for b in prange(work.shape[0]):
        bad = 0
        for i in range(work.shape[1]):
            v = np.rint(work[b, i])
            work[b, i] = v
            if not np.isfinite(v) or v >= _LATTICE_LIMIT or v <= -_LATTICE_LIMIT:
                bad += 1
            else:
                lattice[b, i] = np.int64(v)
        n_bad += bad
    return n_bad


@njit(cache=True, parallel=True)
def _lorenzo3(batch):  # pragma: no cover - exercised via numba CI leg
    n_blocks, nx, ny, nz = batch.shape
    for b in prange(n_blocks):
        blk = batch[b]
        # Descending index order per axis uses only not-yet-updated
        # neighbours — exactly the zero-boundary first difference the
        # NumPy path computes through its scratch buffer.
        for i in range(nx - 1, 0, -1):
            for j in range(ny):
                for k in range(nz):
                    blk[i, j, k] -= blk[i - 1, j, k]
        for i in range(nx):
            for j in range(ny - 1, 0, -1):
                for k in range(nz):
                    blk[i, j, k] -= blk[i, j - 1, k]
        for i in range(nx):
            for j in range(ny):
                for k in range(nz - 1, 0, -1):
                    blk[i, j, k] -= blk[i, j, k - 1]


@njit(cache=True, parallel=True)
def _count_outliers(res, radius, counts):  # pragma: no cover - numba CI leg
    n_blocks, n = res.shape
    hi = 2 * radius - 1
    for b in prange(n_blocks):
        c = 0
        for i in range(n):
            code = res[b, i] + radius  # wraps like the NumPy in-place add
            if code < 1 or code > hi:
                c += 1
        counts[b] = c


@njit(cache=True, parallel=True)
def _encode_residuals(res, radius, offsets, pos, val):  # pragma: no cover
    n_blocks, n = res.shape
    hi = 2 * radius - 1
    for b in prange(n_blocks):
        w = offsets[b]
        for i in range(n):
            code = res[b, i] + radius
            if code < 1 or code > hi:
                pos[w] = i
                val[w] = res[b, i]
                res[b, i] = 0
                w += 1
            else:
                res[b, i] = code


class NumbaKernels(NumpyKernels):
    """``@njit(parallel=True)`` batch kernels; side-channel ops (narrow,
    zigzag, byte planes) inherit the already-C-speed NumPy versions."""

    name = "numba"

    def quantize(self, work, lattice, mask=None):
        return _quantize(work, lattice) == 0

    def lorenzo(self, lattice, scratch=None):
        if lattice.ndim != 4:
            raise ValueError(
                f"numba lorenzo kernel expects a (B, nx, ny, nz) stack, "
                f"got {lattice.ndim}-D"
            )
        _lorenzo3(lattice)

    def encode_residuals(self, res, radius, fits=None, misfit=None):
        if radius < 2:
            raise ValueError(f"radius must be >= 2, got {radius}")
        counts = np.empty(res.shape[0], dtype=np.int64)
        _count_outliers(res, radius, counts)
        offsets = np.cumsum(counts)
        total = int(offsets[-1]) if offsets.size else 0
        offsets -= counts  # exclusive prefix sum: write cursor per block
        pos = np.empty(total, dtype=np.int64)
        val = np.empty(total, dtype=np.int64)
        _encode_residuals(res, radius, offsets, pos, val)
        return counts, pos, val
