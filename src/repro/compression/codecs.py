"""Entropy-stage codecs for quantization codes.

SZ entropy-codes the quantization integers (Huffman + a lossless pass);
this module provides interchangeable backends:

- :class:`HuffmanCodec` — from-scratch canonical Huffman
  (:mod:`repro.compression.huffman`) followed by a zlib pass over the
  packed bits, mirroring SZ's Huffman+Zstd stack.
- :class:`ZlibCodec` — DEFLATE over the raw code bytes.  DEFLATE is
  itself LZ77+Huffman, so rate behaviour is close to the Huffman stack
  while encode/decode run at C speed; it is the default for large
  experiments.
- :class:`RawCodec` — no entropy coding (debug / ablation baseline).

All codecs operate on non-negative integer arrays and round-trip exactly.
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod

import numpy as np

from repro.compression.huffman import DEFAULT_MAX_CODE_LENGTH, HuffmanTable

__all__ = ["Codec", "RawCodec", "ZlibCodec", "HuffmanCodec", "get_codec"]


def _minimal_uint_dtype(max_value: int) -> np.dtype:
    """Smallest unsigned dtype able to hold ``max_value``."""
    for dt in (np.uint8, np.uint16, np.uint32, np.uint64):
        if max_value <= np.iinfo(dt).max:
            return np.dtype(dt)
    raise ValueError(f"value {max_value} exceeds uint64 range")


class Codec(ABC):
    """Round-trip codec for 1-D non-negative integer arrays."""

    name: str = "abstract"

    @abstractmethod
    def encode(self, codes: np.ndarray) -> bytes:
        """Encode ``codes`` into a self-describing byte blob."""

    @abstractmethod
    def decode(self, blob: bytes, n: int) -> np.ndarray:
        """Recover exactly ``n`` codes from ``blob`` (dtype int64)."""

    def encode_narrowed(self, codes: np.ndarray) -> bytes:
        """Encode codes the caller has already narrowed to their minimal
        unsigned dtype (non-negative, value-minimal width).

        Byte-identical to :meth:`encode` — the batched hot path uses it
        to skip the validation and min/max rescans encode would repeat
        per block.  The default just delegates; codecs whose encode
        starts with a narrowing pass override it.
        """
        return self.encode(codes)

    @staticmethod
    def _validate(codes: np.ndarray) -> np.ndarray:
        codes = np.asarray(codes)
        if codes.ndim != 1:
            raise ValueError(f"codes must be 1-D, got shape {codes.shape}")
        if codes.size and codes.min() < 0:
            raise ValueError("codes must be non-negative")
        return codes


class RawCodec(Codec):
    """Store codes verbatim in the minimal unsigned dtype."""

    name = "raw"

    def encode(self, codes: np.ndarray) -> bytes:
        codes = self._validate(codes)
        if codes.size == 0:
            return b"\x01"
        dt = _minimal_uint_dtype(int(codes.max()))
        return bytes([dt.itemsize]) + codes.astype(dt, copy=False).tobytes()

    def encode_narrowed(self, codes: np.ndarray) -> bytes:
        if codes.size == 0:
            return b"\x01"
        return bytes([codes.dtype.itemsize]) + codes.tobytes()

    def decode(self, blob: bytes, n: int) -> np.ndarray:
        if n == 0:
            return np.empty(0, dtype=np.int64)
        itemsize = blob[0]
        dt = np.dtype(f"u{itemsize}")
        return np.frombuffer(blob, dtype=dt, offset=1, count=n).astype(np.int64)


class ZlibCodec(Codec):
    """DEFLATE over the minimal-width byte representation of the codes."""

    name = "zlib"

    def __init__(self, level: int = 6) -> None:
        if not 0 <= level <= 9:
            raise ValueError(f"zlib level must be in [0, 9], got {level}")
        self.level = level

    def encode(self, codes: np.ndarray) -> bytes:
        codes = self._validate(codes)
        if codes.size == 0:
            return b"\x01"
        dt = _minimal_uint_dtype(int(codes.max()))
        # astype(copy=False) keeps callers' pre-narrowed workspace views
        # as-is; zlib consumes the array's buffer directly, so the only
        # full copy left on this path is DEFLATE's own output.
        payload = np.ascontiguousarray(codes.astype(dt, copy=False))
        return bytes([dt.itemsize]) + zlib.compress(payload, self.level)

    def encode_narrowed(self, codes: np.ndarray) -> bytes:
        if codes.size == 0:
            return b"\x01"
        payload = np.ascontiguousarray(codes)
        return bytes([codes.dtype.itemsize]) + zlib.compress(payload, self.level)

    def decode(self, blob: bytes, n: int) -> np.ndarray:
        if n == 0:
            return np.empty(0, dtype=np.int64)
        itemsize = blob[0]
        dt = np.dtype(f"u{itemsize}")
        payload = zlib.decompress(blob[1:])
        return np.frombuffer(payload, dtype=dt, count=n).astype(np.int64)


class HuffmanCodec(Codec):
    """Canonical Huffman + zlib pass, mirroring SZ's Huffman+lossless stack.

    The blob layout is::

        [4B alphabet size][4B bit count][zlib(code lengths)][zlib(packed bits)]

    where each zlib'd section is prefixed by its 4-byte length.
    """

    name = "huffman"

    def __init__(self, max_code_length: int = DEFAULT_MAX_CODE_LENGTH, level: int = 6) -> None:
        if max_code_length < 1 or max_code_length > 24:
            raise ValueError(f"max_code_length must be in [1, 24], got {max_code_length}")
        self.max_code_length = max_code_length
        self.level = level

    def encode(self, codes: np.ndarray) -> bytes:
        codes = self._validate(codes)
        if codes.size == 0:
            return (0).to_bytes(4, "little") + (0).to_bytes(4, "little")
        alphabet = int(codes.max()) + 1
        freqs = np.bincount(codes, minlength=alphabet)
        table = HuffmanTable.from_frequencies(freqs, max_length=self.max_code_length)
        bits_blob, nbits = table.encode(codes)
        lens_z = zlib.compress(table.serialize_lengths(), self.level)
        bits_z = zlib.compress(bits_blob, self.level)
        header = alphabet.to_bytes(4, "little") + nbits.to_bytes(4, "little")
        return (
            header
            + len(lens_z).to_bytes(4, "little")
            + lens_z
            + len(bits_z).to_bytes(4, "little")
            + bits_z
        )

    def decode(self, blob: bytes, n: int) -> np.ndarray:
        if n == 0:
            return np.empty(0, dtype=np.int64)
        alphabet = int.from_bytes(blob[0:4], "little")
        if alphabet == 0:
            raise ValueError("empty Huffman blob cannot decode symbols")
        pos = 8
        lens_size = int.from_bytes(blob[pos : pos + 4], "little")
        pos += 4
        lengths = np.frombuffer(zlib.decompress(blob[pos : pos + lens_size]), dtype=np.uint8)
        pos += lens_size
        bits_size = int.from_bytes(blob[pos : pos + 4], "little")
        pos += 4
        bits_blob = zlib.decompress(blob[pos : pos + bits_size])
        table = HuffmanTable.from_lengths(lengths)
        return table.decode(bits_blob, n)


_CODECS: dict[str, type[Codec]] = {
    "raw": RawCodec,
    "zlib": ZlibCodec,
    "huffman": HuffmanCodec,
}


def get_codec(name: str | Codec, **kwargs: object) -> Codec:
    """Resolve a codec by name (``raw`` / ``zlib`` / ``huffman``) or pass through."""
    if isinstance(name, Codec):
        return name
    try:
        cls = _CODECS[name]
    except KeyError:
        raise ValueError(f"unknown codec {name!r}; options: {sorted(_CODECS)}") from None
    return cls(**kwargs)  # type: ignore[arg-type]
