"""The pluggable compressor backbone: capabilities, specs, registry.

The paper argues SZ over ZFP in prose (§2.2: fixed-rate ZFP cannot
enforce an absolute error bound); the reproduction makes the compressor
a first-class, registry-resolved citizen so that argument becomes a
*measured runtime decision* (:func:`repro.core.selection.
select_compressor`) instead of a hard-coded default:

- :class:`CompressorCapabilities` — what a compressor family can do
  (``error_bounded``, ``fixed_rate``, ``supports_estimate``,
  ``supports_workspace``), checked by every consumer that needs a
  capability instead of dying with an ``AttributeError`` deep inside
  calibration,
- :class:`CompressorSpec` — a serializable (family + params) value
  naming one concrete configuration; what sweeps fan over, what the
  stream ledger records with every decision, and what the
  :class:`~repro.models.calibration.RateModelBank` keys on,
- :class:`CompressorRegistry` — ``register``/``create(spec)``/
  ``default()``; adapts the existing compressors with byte-identical
  payloads (``registry.create(spec).compress(...)`` equals direct
  construction, property-tested),
- :func:`decompress_any` — block-type dispatch so reconstruction paths
  work for every registered family, not just SZ.

Terminology note: the *entropy codec* (zlib / huffman / raw) is the SZ
family's internal entropy stage — one **parameter** of the ``sz`` spec —
while the compressor **family** (``sz``, ``zfp_like``, ...) is what the
registry selects between.  The CLI's legacy ``--codec`` flag is an alias
for ``--compressor sz:codec=...``.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import Any, Protocol, runtime_checkable

import numpy as np

# Leaf-module imports only: this module sits *below* the concrete
# compressors (sz.py imports its capability/spec types from here), so
# the concrete families are imported lazily — inside adapters and
# :func:`register_builtin_families` — to keep the graph acyclic.
from repro.compression.quantizer import DEFAULT_RADIUS
from repro.compression.zfp_like import ZFPBlockStream, ZFPLikeCompressor

__all__ = [
    "CompressorCapabilities",
    "CompressorSpec",
    "Compressor",
    "CompressorRegistry",
    "REGISTRY",
    "UnsupportedCapabilityError",
    "SZ_CAPABILITIES",
    "register_builtin_families",
    "ZFPLikeAdapter",
    "AdaptiveSZAdapter",
    "resolve_compressor",
    "capabilities_of",
    "spec_of",
    "decompress_any",
]


class UnsupportedCapabilityError(TypeError):
    """An operation requires a capability the compressor does not declare.

    Raised *at the boundary* (calibration entry, sweep entry, pipeline
    construction) with an actionable message, instead of an
    ``AttributeError`` from deep inside a probe loop.
    """


@dataclass(frozen=True)
class CompressorCapabilities:
    """What a compressor family can and cannot do.

    Attributes
    ----------
    error_bounded:
        ``compress(data, eb)`` honours ``eb`` as a pointwise error
        bound.  Required by the adaptive pipeline (the optimizer's whole
        output is a per-partition bound vector) and by rate-model
        calibration (the model is bitrate *as a function of* the bound).
    fixed_rate:
        The stored size is fixed by configuration (bits/value), not by
        the data or a bound — §2.2's ZFP fixed-rate mode.  Mutually
        exclusive with ``error_bounded`` in practice.
    supports_estimate:
        Provides ``estimate``/``estimate_bitrate`` — the codec-free
        histogram rate prediction used by ``probe_mode="estimate"``.
    supports_workspace:
        ``compress`` accepts a reusable
        :class:`~repro.compression.workspace.Workspace` scratch arena.
    """

    error_bounded: bool = False
    fixed_rate: bool = False
    supports_estimate: bool = False
    supports_workspace: bool = False

    def require(self, capability: str, operation: str, who: object = None) -> None:
        """Raise :class:`UnsupportedCapabilityError` unless ``capability`` holds."""
        if not getattr(self, capability):
            subject = f"{who!r} " if who is not None else ""
            raise UnsupportedCapabilityError(
                f"{operation} requires a compressor with the "
                f"{capability!r} capability; {subject}does not declare it"
            )


#: Capabilities of the SZ family (attached to ``SZCompressor`` itself —
#: the registry's "adapter" for SZ is the real class, which is what makes
#: payload byte-identity trivial).
SZ_CAPABILITIES = CompressorCapabilities(
    error_bounded=True,
    fixed_rate=False,
    supports_estimate=True,
    supports_workspace=True,
)

#: The *raw* fixed-rate codec carries a declaration too (attached here —
#: :mod:`repro.compression.zfp_like` stays a leaf module below this one),
#: so capability gates catch direct instances, not just the adapter:
#: without it, :func:`capabilities_of`'s legacy fallback would misreport
#: a hand-constructed ``ZFPLikeCompressor`` as error-bounded and the old
#: deep ``TypeError`` inside calibration would survive the refactor.
ZFPLikeCompressor.capabilities = CompressorCapabilities(fixed_rate=True)


def _coerce_param(value: str) -> Any:
    """Best-effort typed coercion for CLI/parsed spec parameters."""
    low = value.lower()
    if low in ("true", "false"):
        return low == "true"
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        pass
    return value


@dataclass(frozen=True)
class CompressorSpec:
    """A serializable name for one concrete compressor configuration.

    ``family`` selects the registry entry; ``params`` are the
    family-specific constructor parameters (e.g. SZ's entropy ``codec``
    and ``mode``, ZFP-like's ``rate``).  Specs are hashable value
    objects — suitable as cache keys (:class:`~repro.models.calibration.
    RateModelBank`) — and JSON round-trippable (:meth:`to_dict` /
    :meth:`from_dict`), which is how the stream ledger records the
    compressor behind every decision.

    Examples
    --------
    >>> CompressorSpec.sz(codec="huffman").label
    'sz(codec=huffman)'
    >>> CompressorSpec.parse("zfp_like:rate=8")
    CompressorSpec(family='zfp_like', params=(('rate', 8),))
    """

    family: str
    params: tuple[tuple[str, Any], ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.family or not isinstance(self.family, str):
            raise ValueError(f"spec family must be a non-empty string, got {self.family!r}")
        params = self.params
        if isinstance(params, Mapping):
            params = tuple(sorted(params.items()))
        else:
            params = tuple(sorted((str(k), v) for k, v in params))
        object.__setattr__(self, "params", params)

    # -- constructors ----------------------------------------------------

    @classmethod
    def make(cls, family: str, **params: Any) -> "CompressorSpec":
        return cls(family=family, params=tuple(sorted(params.items())))

    @classmethod
    def sz(
        cls,
        mode: str = "abs",
        codec: str = "zlib",
        radius: int = DEFAULT_RADIUS,
        engine: str = "dual",
        kernels: str | None = None,
    ) -> "CompressorSpec":
        """The SZ family; ``codec`` is the *entropy* stage (zlib/huffman/raw).

        ``kernels`` selects the batch kernel backend
        (``numpy``/``numba``/``auto``); ``None`` omits the key so specs
        parsed from pre-kernels ledgers compare equal (``canonical``
        fills the ``auto`` default either way).
        """
        params: dict[str, Any] = dict(
            mode=mode, codec=codec, radius=int(radius), engine=engine
        )
        if kernels is not None:
            params["kernels"] = kernels
        return cls.make("sz", **params)

    @classmethod
    def zfp_like(cls, rate: float = 8.0) -> "CompressorSpec":
        """The fixed-rate ZFP-style comparator at ``rate`` bits/value."""
        return cls.make("zfp_like", rate=float(rate))

    @classmethod
    def parse(cls, text: str) -> "CompressorSpec":
        """Parse ``"family"`` or ``"family:key=val,key=val"`` (CLI grammar)."""
        text = text.strip()
        if not text:
            raise ValueError("empty compressor spec")
        family, _, tail = text.partition(":")
        params: dict[str, Any] = {}
        if tail:
            for item in tail.split(","):
                key, sep, raw = item.partition("=")
                if not sep or not key.strip():
                    raise ValueError(
                        f"malformed spec parameter {item!r} in {text!r} "
                        "(expected key=value)"
                    )
                params[key.strip()] = _coerce_param(raw.strip())
        return cls.make(family.strip(), **params)

    # -- views -----------------------------------------------------------

    @property
    def options(self) -> dict[str, Any]:
        """The params as a plain dict (copy)."""
        return dict(self.params)

    @property
    def label(self) -> str:
        """Compact human-readable form, e.g. ``sz(codec=huffman)``."""
        if not self.params:
            return self.family
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.family}({inner})"

    def __str__(self) -> str:
        return self.label

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (what the stream ledger stores)."""
        return {"family": self.family, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CompressorSpec":
        if "family" not in data:
            raise ValueError(f"compressor spec dict missing 'family': {data!r}")
        return cls.make(str(data["family"]), **dict(data.get("params") or {}))


@runtime_checkable
class Compressor(Protocol):
    """Structural interface every registered compressor satisfies.

    ``compress(data, eb, workspace=None)`` returns a self-describing
    block; ``decompress(block)`` inverts it.  ``eb`` is honoured as an
    error bound only when :attr:`capabilities` declares
    ``error_bounded`` — fixed-rate families accept and ignore it, so the
    call shape stays uniform across the registry.
    """

    capabilities: CompressorCapabilities

    @property
    def spec(self) -> CompressorSpec: ...

    def compress(self, data: np.ndarray, eb: float, workspace: Any | None = None) -> Any: ...

    def decompress(self, block: Any) -> np.ndarray: ...


# -- adapters for the non-SZ families ----------------------------------------


class ZFPLikeAdapter:
    """Registry adapter giving :class:`ZFPLikeCompressor` the uniform shape.

    The underlying codec is fixed-rate: ``compress`` accepts the
    registry-wide ``(data, eb, workspace)`` signature but **ignores the
    error bound** — precisely the §2.2 property
    :func:`~repro.core.selection.select_compressor` quantifies and
    rejects.  Payloads are byte-identical to direct
    :class:`ZFPLikeCompressor` use (the adapter owns a real instance and
    delegates).
    """

    capabilities = CompressorCapabilities(error_bounded=False, fixed_rate=True)

    def __init__(self, rate: float = 8.0) -> None:
        self._inner = ZFPLikeCompressor(rate=rate)
        self.rate = self._inner.rate

    @property
    def spec(self) -> CompressorSpec:
        return CompressorSpec.zfp_like(rate=self.rate)

    def compress(
        self, data: np.ndarray, eb: float | None = None, workspace: Any | None = None
    ) -> ZFPBlockStream:
        return self._inner.compress(data)

    def compress_many(
        self,
        views: list[np.ndarray],
        ebs: Any,
        workspace: Any | None = None,
        threads: int | None = None,
    ) -> list[ZFPBlockStream]:
        # Fixed-rate transform coding has no batched kernel path yet.
        return [self._inner.compress(v) for v in views]  # repro-lint: disable=RL011

    def decompress(self, block: ZFPBlockStream) -> np.ndarray:
        # Blocks are self-describing: reuse the owned instance when the
        # rates match, otherwise decode with a codec at the block's rate.
        inner = (
            self._inner
            if block.rate == self.rate
            else ZFPLikeCompressor(rate=block.rate)
        )
        return inner.decompress(block)

    def __repr__(self) -> str:
        return f"ZFPLikeAdapter(rate={self.rate})"


class AdaptiveSZAdapter:
    """Registry adapter for the SZ2-style regression-predictor compressor.

    Error-bounded like plain SZ but without the histogram estimator or
    workspace arena — the capability flags say so, and the estimate-mode
    probe paths raise :class:`UnsupportedCapabilityError` instead of an
    ``AttributeError``.
    """

    capabilities = CompressorCapabilities(error_bounded=True)

    def __init__(
        self, codec: str = "zlib", block: int = 8, radius: int = DEFAULT_RADIUS
    ) -> None:
        from repro.compression.regression import AdaptiveSZCompressor

        self._inner = AdaptiveSZCompressor(codec=codec, block=block, radius=radius)
        self.codec_name = self._inner.codec.name
        self.block = int(block)
        self.radius = int(radius)

    @property
    def spec(self) -> CompressorSpec:
        return CompressorSpec.make(
            "sz_adaptive", codec=self.codec_name, block=self.block, radius=self.radius
        )

    def compress(
        self, data: np.ndarray, eb: float, workspace: Any | None = None
    ) -> AdaptiveBlockStream:
        return self._inner.compress(data, eb)

    def compress_many(
        self,
        views: list[np.ndarray],
        ebs: Any,
        workspace: Any | None = None,
        threads: int | None = None,
    ) -> list[AdaptiveBlockStream]:
        # Per-block predictor selection is inherently sequential.
        return [
            self._inner.compress(v, float(eb))  # repro-lint: disable=RL011
            for v, eb in zip(views, ebs)
        ]

    def decompress(self, block: AdaptiveBlockStream) -> np.ndarray:
        return self._inner.decompress(block)

    def __repr__(self) -> str:
        return f"AdaptiveSZAdapter(codec={self.codec_name!r}, block={self.block})"


# -- the registry ------------------------------------------------------------


@dataclass(frozen=True)
class _FamilyEntry:
    factory: Callable[..., Any]
    capabilities: CompressorCapabilities
    defaults: tuple[tuple[str, Any], ...]
    description: str
    block_type: type | None = None
    block_decompress: Callable[[Any], np.ndarray] | None = None


class CompressorRegistry:
    """Capability-typed factory for compressor families.

    ``register`` declares a family (factory + capabilities + default
    params); ``create`` instantiates a :class:`CompressorSpec`;
    ``default`` names the registry's default configuration (plain SZ,
    matching every call site that used to default-construct
    ``SZCompressor()``).
    """

    def __init__(self) -> None:
        self._families: dict[str, _FamilyEntry] = {}
        self._default_family: str | None = None

    # -- registration ----------------------------------------------------

    def register(
        self,
        family: str,
        factory: Callable[..., Any],
        capabilities: CompressorCapabilities,
        defaults: Mapping[str, Any] | None = None,
        description: str = "",
        block_type: type | None = None,
        block_decompress: Callable[[Any], np.ndarray] | None = None,
        default: bool = False,
    ) -> None:
        """Declare a compressor family.

        ``defaults`` names every accepted parameter with its default —
        ``create`` rejects unknown parameters against it.  ``block_type``
        plus ``block_decompress`` register the family's compressed-block
        class for :func:`decompress_any` dispatch.
        """
        if not family:
            raise ValueError("family name must be non-empty")
        self._families[family] = _FamilyEntry(
            factory=factory,
            capabilities=capabilities,
            defaults=tuple(sorted((defaults or {}).items())),
            description=description,
            block_type=block_type,
            block_decompress=block_decompress,
        )
        if default or self._default_family is None:
            self._default_family = family

    def families(self) -> list[str]:
        return sorted(self._families)

    def __contains__(self, family: str) -> bool:
        return family in self._families

    def _entry(self, family: str) -> _FamilyEntry:
        try:
            return self._families[family]
        except KeyError:
            raise ValueError(
                f"unknown compressor family {family!r}; "
                f"registered: {self.families()}"
            ) from None

    def capabilities(self, family: str) -> CompressorCapabilities:
        return self._entry(family).capabilities

    def block_type(self, family: str) -> type | None:
        """The family's compressed-block class (``None`` if undeclared)."""
        return self._entry(family).block_type

    def describe(self, family: str) -> str:
        return self._entry(family).description

    def defaults(self, family: str) -> dict[str, Any]:
        return dict(self._entry(family).defaults)

    # -- construction ----------------------------------------------------

    def default(self) -> CompressorSpec:
        """The registry's default configuration (the old implicit SZ)."""
        if self._default_family is None:
            raise ValueError("no compressor families registered")
        return CompressorSpec(self._default_family)

    def canonical(self, spec: "CompressorSpec | str") -> CompressorSpec:
        """Fill a spec's params with the family defaults (stable cache key)."""
        if isinstance(spec, str):
            spec = CompressorSpec.parse(spec)
        entry = self._entry(spec.family)
        params = dict(entry.defaults)
        unknown = set(spec.options) - set(params)
        if unknown:
            raise ValueError(
                f"unknown parameter(s) {sorted(unknown)} for compressor "
                f"family {spec.family!r}; accepted: {sorted(params)}"
            )
        params.update(spec.options)
        return CompressorSpec.make(spec.family, **params)

    def create(self, spec: "CompressorSpec | str | None" = None) -> Any:
        """Instantiate a compressor from a spec (or the default)."""
        spec = self.default() if spec is None else self.canonical(spec)
        return self._entry(spec.family).factory(**spec.options)

    # -- block dispatch --------------------------------------------------

    def decompress(self, block: Any) -> np.ndarray:
        """Reconstruct a field from any registered family's block."""
        for entry in self._families.values():
            if (
                entry.block_type is not None
                and entry.block_decompress is not None
                and isinstance(block, entry.block_type)
            ):
                return entry.block_decompress(block)
        raise TypeError(
            f"no registered compressor family decompresses "
            f"{type(block).__name__} blocks"
        )


REGISTRY = CompressorRegistry()


def _sz_factory(**params: Any):
    from repro.compression.sz import SZCompressor

    return SZCompressor(**params)


def register_builtin_families(registry: CompressorRegistry | None = None) -> None:
    """Register the built-in families (idempotent).

    Called from :mod:`repro.compression`'s package init, after the
    concrete compressor modules are importable; re-running simply
    overwrites the entries with identical ones.
    """
    from repro.compression.regression import AdaptiveBlockStream
    from repro.compression.sz import CompressedBlock
    from repro.compression.sz import decompress as sz_decompress

    reg = registry if registry is not None else REGISTRY
    reg.register(
        "sz",
        _sz_factory,
        SZ_CAPABILITIES,
        defaults={
            "mode": "abs",
            "codec": "zlib",
            "radius": DEFAULT_RADIUS,
            "engine": "dual",
            "kernels": "auto",
        },
        description=(
            "error-bounded SZ-style compressor (quantize -> Lorenzo -> "
            "entropy codec); 'codec' is the entropy stage, not the family"
        ),
        block_type=CompressedBlock,
        block_decompress=sz_decompress,
        default=True,
    )
    reg.register(
        "zfp_like",
        ZFPLikeAdapter,
        ZFPLikeAdapter.capabilities,
        defaults={"rate": 8.0},
        description=(
            "fixed-rate block-transform codec (ZFP-style comparator); "
            "cannot enforce an absolute error bound (paper §2.2)"
        ),
        block_type=ZFPBlockStream,
        block_decompress=lambda b: ZFPLikeAdapter(rate=b.rate).decompress(b),
    )
    reg.register(
        "sz_adaptive",
        AdaptiveSZAdapter,
        AdaptiveSZAdapter.capabilities,
        defaults={"codec": "zlib", "block": 8, "radius": DEFAULT_RADIUS},
        description=(
            "error-bounded SZ2-style compressor with per-block "
            "Lorenzo-vs-regression predictor selection"
        ),
        block_type=AdaptiveBlockStream,
        block_decompress=lambda b: AdaptiveSZAdapter(
            codec=b.codec_name, block=b.block, radius=b.radius
        ).decompress(b),
    )


# -- module-level conveniences ------------------------------------------------


def resolve_compressor(
    compressor: "Compressor | CompressorSpec | str | None",
) -> Any:
    """Turn ``None`` / a spec / a spec string / an instance into an instance.

    The single resolution point every layer funnels through: ``None``
    keeps the historical default (plain SZ), specs go through the
    registry, instances pass through untouched (caller-owned state such
    as codec levels is preserved — required for byte-identical
    process-pool output).
    """
    if compressor is None or isinstance(compressor, (CompressorSpec, str)):
        return REGISTRY.create(compressor)
    return compressor


def capabilities_of(compressor: Any) -> CompressorCapabilities:
    """A compressor's declared capabilities, with a legacy fallback.

    Instances without a ``capabilities`` declaration (third-party
    SZ-alikes, test doubles) are assumed error-bounded — the historical
    duck-typed contract — with ``supports_estimate`` inferred from the
    presence of ``estimate_bitrate``.
    """
    caps = getattr(compressor, "capabilities", None)
    if isinstance(caps, CompressorCapabilities):
        return caps
    return CompressorCapabilities(
        error_bounded=True,
        supports_estimate=callable(getattr(compressor, "estimate_bitrate", None)),
        supports_workspace=False,
    )


def spec_of(compressor: Any) -> CompressorSpec | None:
    """A compressor's spec, or ``None`` for instances that don't carry one."""
    spec = getattr(compressor, "spec", None)
    return spec if isinstance(spec, CompressorSpec) else None


def decompress_any(block: Any) -> np.ndarray:
    """Reconstruct a field from any registered family's compressed block."""
    return REGISTRY.decompress(block)
