"""Bit-level packing helpers.

The Huffman coder produces variable-length codes; these helpers pack a
flat bit array into bytes and read it back.  Everything is vectorized via
:func:`numpy.packbits` / :func:`numpy.unpackbits`; no per-bit Python loop
is ever executed on the encode path.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pack_bits", "unpack_bits", "BitReader"]


def pack_bits(bits: np.ndarray) -> bytes:
    """Pack a 0/1 array (MSB-first within each byte) into bytes.

    The final byte is zero-padded; callers must remember the true bit
    count to decode.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim != 1:
        raise ValueError(f"bits must be 1-D, got shape {bits.shape}")
    return np.packbits(bits).tobytes()


def unpack_bits(blob: bytes, nbits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`; returns exactly ``nbits`` bits."""
    if nbits < 0:
        raise ValueError(f"nbits must be non-negative, got {nbits}")
    if nbits > len(blob) * 8:
        raise ValueError(f"requested {nbits} bits but blob holds only {len(blob) * 8}")
    arr = np.unpackbits(np.frombuffer(blob, dtype=np.uint8), count=nbits)
    return arr


class BitReader:
    """Sequential MSB-first bit reader over a byte blob.

    Used by the Huffman decoder, which needs a peek/consume interface:
    it peeks ``max_code_length`` bits, looks the window up in a table,
    then consumes only the true code length.  The hot loop keeps the
    buffer in a plain Python int for speed.
    """

    def __init__(self, blob: bytes) -> None:
        self._data = blob
        self._pos = 0  # next byte index
        self._buf = 0  # bit buffer, left-aligned at bit _nbuf-1
        self._nbuf = 0  # number of valid bits in _buf

    def peek(self, width: int) -> int:
        """Return the next ``width`` bits as an int without consuming.

        If fewer than ``width`` bits remain the result is left-shifted
        (zero-padded on the right), matching the zero padding written by
        :func:`pack_bits`.
        """
        while self._nbuf < width and self._pos < len(self._data):
            self._buf = (self._buf << 8) | self._data[self._pos]
            self._pos += 1
            self._nbuf += 8
        if self._nbuf >= width:
            return (self._buf >> (self._nbuf - width)) & ((1 << width) - 1)
        return (self._buf << (width - self._nbuf)) & ((1 << width) - 1)

    def consume(self, width: int) -> None:
        """Discard ``width`` bits (must not exceed what peek buffered)."""
        if width > self._nbuf:
            # peek() pads with phantom zero bits at the stream tail; keep
            # the accounting consistent by clamping.
            width = self._nbuf
        self._nbuf -= width
        self._buf &= (1 << self._nbuf) - 1

    @property
    def bits_remaining(self) -> int:
        return self._nbuf + 8 * (len(self._data) - self._pos)
