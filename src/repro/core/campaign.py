"""Campaign orchestration: whole snapshots, all fields, many dumps.

The paper's motivating arithmetic (§1) is storage for a *campaign*: one
4096³ Nyx run dumps ~2.8 TB per snapshot, 200 snapshots per run.  This
module packages the per-field machinery into that workflow:

- :class:`FieldSpec` — per-field quality configuration (spectrum
  tolerance, optional halo constraint, PW_REL mode, ...),
- :class:`CompressionCampaign` — calibrates once, then compresses every
  field of every snapshot adaptively, accumulating storage accounting
  (raw vs compressed bytes, per-field ratios, per-snapshot trends).

Budgets are re-derived per snapshot from the models (cheap), exactly as
the in situ deployment would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import HaloQualitySpec, OptimizerSettings
from repro.core.pipeline import AdaptiveCompressionPipeline, SnapshotResult
from repro.compression.sz import SZCompressor
from repro.models.calibration import CalibrationResult, calibrate_rate_model
from repro.models.fft_error import (
    spectrum_ratio_tolerance_to_eb,
    sub_threshold_power_estimate,
)
from repro.foresight.evaluator import FieldReference
from repro.parallel.backends import ExecutionBackend, SerialBackend, get_backend
from repro.parallel.decomposition import BlockDecomposition
from repro.sim.nyx import NyxSnapshot
from repro.util.timer import TimingBreakdown

__all__ = ["FieldSpec", "FieldOutcome", "CampaignReport", "CompressionCampaign"]


@dataclass(frozen=True)
class FieldSpec:
    """Quality/configuration policy for one field.

    Attributes
    ----------
    spectrum_tolerance / spectrum_k_max / confidence_z:
        P(k) acceptance band driving the model-derived budget.
    correlated_fraction:
        §3.5-revision knob for the budget inversion (0 = paper's model).
    halo_aware:
        Apply the combined §3.6 optimization (density fields).
    halo_percentile:
        Percentile of the field defining ``t_boundary``.
    halo_mass_fraction:
        Mass budget as a fraction of the total halo mass (Eq. 11).
    eb_override:
        Skip the model inversion and use this average bound directly.
    """

    spectrum_tolerance: float = 0.01
    spectrum_k_max: int = 10
    confidence_z: float = 2.0
    correlated_fraction: float = 0.0
    halo_aware: bool = False
    halo_percentile: float = 99.5
    halo_mass_fraction: float = 0.01
    eb_override: float | None = None

    def __post_init__(self) -> None:
        if self.spectrum_tolerance <= 0:
            raise ValueError("spectrum_tolerance must be positive")
        if not 0 <= self.correlated_fraction <= 1:
            raise ValueError("correlated_fraction must be in [0, 1]")
        if not 50 <= self.halo_percentile < 100:
            raise ValueError("halo_percentile must be in [50, 100)")
        if self.eb_override is not None and self.eb_override <= 0:
            raise ValueError("eb_override must be positive")


@dataclass
class FieldOutcome:
    """One field of one snapshot, compressed."""

    field: str
    redshift: float
    eb_avg: float
    result: SnapshotResult

    @property
    def ratio(self) -> float:
        return self.result.overall_ratio

    @property
    def raw_bytes(self) -> int:
        stats = self.result.stats
        return stats.source_itemsize * stats.total_elements

    @property
    def compressed_bytes(self) -> int:
        return self.result.stats.total_nbytes


@dataclass
class CampaignReport:
    """Aggregated storage accounting across a campaign."""

    outcomes: list[FieldOutcome] = field(default_factory=list)

    @property
    def raw_bytes(self) -> int:
        return sum(o.raw_bytes for o in self.outcomes)

    @property
    def compressed_bytes(self) -> int:
        return sum(o.compressed_bytes for o in self.outcomes)

    @property
    def overall_ratio(self) -> float:
        if self.compressed_bytes == 0:
            raise ValueError("campaign is empty")
        return self.raw_bytes / self.compressed_bytes

    def field_ratio(self, name: str) -> float:
        rows = [o for o in self.outcomes if o.field == name]
        if not rows:
            raise KeyError(f"no outcomes recorded for field {name!r}")
        raw = sum(o.raw_bytes for o in rows)
        comp = sum(o.compressed_bytes for o in rows)
        return raw / comp

    def snapshot_ratio(self, redshift: float) -> float:
        rows = [o for o in self.outcomes if o.redshift == redshift]
        if not rows:
            raise KeyError(f"no outcomes recorded for z={redshift}")
        return sum(o.raw_bytes for o in rows) / sum(o.compressed_bytes for o in rows)

    def as_rows(self) -> list[list[object]]:
        return [
            [o.redshift, o.field, o.eb_avg, o.ratio, o.compressed_bytes]
            for o in self.outcomes
        ]

    @property
    def timings(self) -> TimingBreakdown:
        """Per-phase timings merged across every compressed field.

        The campaign-level §4.3 overhead view: e.g.
        ``report.timings.overhead_ratio("features", "compress")``.
        """
        merged = TimingBreakdown()
        for o in self.outcomes:
            merged.merge(o.result.timings)
        return merged


class CompressionCampaign:
    """Adaptive compression of whole snapshots across a dump schedule.

    Parameters
    ----------
    decomposition:
        Rank layout shared by every field.
    field_specs:
        Field name -> :class:`FieldSpec`; fields without an entry use the
        default spec.
    compressor:
        Error-bounded compressor shared across fields.
    settings:
        Optimizer settings.
    backend:
        Execution backend (registry name or instance) used to compress
        every field; default is the serial rank loop.  A
        :class:`~repro.parallel.backends.ProcessBackend` keeps its
        worker pool alive across fields and snapshots — call
        :meth:`close` when done.

    Examples
    --------
    >>> from repro.sim.nyx import NyxSimulator
    >>> from repro.parallel.decomposition import BlockDecomposition
    >>> sim = NyxSimulator(shape=(16, 16, 16), seed=0)
    >>> dec = BlockDecomposition((16, 16, 16), blocks=2)
    >>> campaign = CompressionCampaign(dec)
    >>> campaign.calibrate(sim.snapshot(z=2.0))
    >>> report = campaign.compress_snapshot(sim.snapshot(z=1.0))
    >>> report.overall_ratio > 1.0
    True
    """

    def __init__(
        self,
        decomposition: BlockDecomposition,
        field_specs: dict[str, FieldSpec] | None = None,
        compressor: SZCompressor | None = None,
        settings: OptimizerSettings | None = None,
        backend: str | ExecutionBackend | None = None,
    ) -> None:
        self.decomposition = decomposition
        self.field_specs = dict(field_specs or {})
        self.compressor = compressor or SZCompressor()
        self.settings = settings or OptimizerSettings()
        self.backend = SerialBackend() if backend is None else get_backend(backend)
        self.calibrations: dict[str, CalibrationResult] = {}
        self.report = CampaignReport()

    def close(self) -> None:
        """Release backend resources (e.g. a process worker pool)."""
        self.backend.close()

    def __enter__(self) -> "CompressionCampaign":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def spec_for(self, name: str) -> FieldSpec:
        return self.field_specs.get(name, FieldSpec())

    # -- calibration --------------------------------------------------------

    def calibrate(self, snapshot: NyxSnapshot, max_partitions: int = 24, seed: int = 0) -> None:
        """Fit the rate model per field (offline, once per campaign)."""
        for name, data in snapshot.fields.items():
            eb_scale = self._budget(name, FieldReference(data))
            self.calibrations[name] = calibrate_rate_model(
                self.decomposition.partition_views(data),
                compressor=self.compressor,
                eb_scale=eb_scale,
                max_partitions=max_partitions,
                seed=seed,
            )

    # -- per-snapshot compression --------------------------------------------

    def compress_snapshot(self, snapshot: NyxSnapshot) -> CampaignReport:
        """Adaptively compress every field; returns the cumulative report."""
        if not self.calibrations:
            raise RuntimeError("call calibrate() before compressing snapshots")
        for name, data in snapshot.fields.items():
            if name not in self.calibrations:
                raise KeyError(f"field {name!r} was not calibrated")
            spec = self.spec_for(name)
            # One shared reference per (field, snapshot): the budget
            # inversion and the halo-spec derivation reuse the same
            # float64 cast and cached analyses.
            ref = FieldReference(data)
            eb_avg = self._budget(name, ref)
            halo = self._halo_spec(name, ref, eb_avg) if spec.halo_aware else None
            pipe = AdaptiveCompressionPipeline(
                self.calibrations[name].rate_model,
                compressor=self.compressor,
                settings=self.settings,
                backend=self.backend,
            )
            result = pipe.run_insitu_spmd(
                data, self.decomposition, eb_avg=eb_avg, halo=halo
            )
            self.report.outcomes.append(
                FieldOutcome(
                    field=name,
                    redshift=snapshot.redshift,
                    eb_avg=eb_avg,
                    result=result,
                )
            )
        return self.report

    # -- internals -------------------------------------------------------------

    def _budget(self, name: str, ref: FieldReference) -> float:
        spec = self.spec_for(name)
        if spec.eb_override is not None:
            return spec.eb_override
        f64 = ref.f64
        ps = ref.spectrum()
        return spectrum_ratio_tolerance_to_eb(
            ps,
            f64.size,
            tolerance=spec.spectrum_tolerance,
            k_max=spec.spectrum_k_max,
            confidence_z=spec.confidence_z,
            sub_power_fn=lambda e: sub_threshold_power_estimate(f64, e, stride=2),
            correlated_fraction=spec.correlated_fraction,
        )

    def _halo_spec(self, name: str, ref: FieldReference, eb_avg: float) -> HaloQualitySpec | None:
        spec = self.spec_for(name)
        t_boundary = float(np.percentile(ref.f64, spec.halo_percentile))
        catalog = ref.halos(t_boundary)
        if catalog.n_halos == 0:
            return None
        return HaloQualitySpec(
            t_boundary=t_boundary,
            mass_budget=spec.halo_mass_fraction * float(catalog.masses.sum()),
            reference_eb=min(1.0, eb_avg),
        )
