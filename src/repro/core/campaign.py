"""Campaign orchestration: whole snapshots, all fields, many dumps.

The paper's motivating arithmetic (§1) is storage for a *campaign*: one
4096³ Nyx run dumps ~2.8 TB per snapshot, 200 snapshots per run.  This
module packages the per-field machinery into that workflow:

- :class:`FieldSpec` — per-field quality configuration (spectrum
  tolerance, optional halo constraint, PW_REL mode, ...), shared with
  the streaming controller (it lives in :mod:`repro.core.config`),
- :class:`CompressionCampaign` — calibrates once, then compresses every
  field of every snapshot adaptively, accumulating storage accounting
  (raw vs compressed bytes, per-field ratios, per-snapshot trends).

The campaign is a thin *batch* client of the streaming subsystem: it
wraps an :class:`~repro.stream.controller.InSituController` configured
with frozen models (``recalibrate="never"``) and per-snapshot budget
re-derivation (``warm_start=False``) — exactly the seed semantics,
"budgets re-derived per snapshot from the models (cheap), exactly as
the in situ deployment would".  Online deployments that want warm
starts, drift-gated recalibration, a run ledger, or a total-run byte
budget should use the controller directly.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.core.config import FieldSpec, OptimizerSettings
from repro.core.pipeline import SnapshotResult
from repro.compression.api import Compressor, CompressorSpec, resolve_compressor
from repro.models.calibration import CalibrationResult
from repro.parallel.backends import ExecutionBackend
from repro.parallel.decomposition import BlockDecomposition
from repro.sim.nyx import NyxSnapshot
from repro.stream.controller import InSituController
from repro.util.tables import format_table
from repro.util.timer import TimingBreakdown

__all__ = ["FieldSpec", "FieldOutcome", "CampaignReport", "CompressionCampaign"]


@dataclass
class FieldOutcome:
    """One field of one snapshot, compressed."""

    field: str
    redshift: float
    eb_avg: float
    result: SnapshotResult

    @property
    def ratio(self) -> float:
        return self.result.overall_ratio

    @property
    def raw_bytes(self) -> int:
        stats = self.result.stats
        return stats.source_itemsize * stats.total_elements

    @property
    def compressed_bytes(self) -> int:
        return self.result.stats.total_nbytes


#: Column order of :meth:`CampaignReport.as_rows` and the exports.
_REPORT_COLUMNS = ("redshift", "field", "eb_avg", "ratio", "compressed_bytes")


@dataclass
class CampaignReport:
    """Aggregated storage accounting across a campaign."""

    outcomes: list[FieldOutcome] = field(default_factory=list)

    @property
    def raw_bytes(self) -> int:
        return sum(o.raw_bytes for o in self.outcomes)

    @property
    def compressed_bytes(self) -> int:
        return sum(o.compressed_bytes for o in self.outcomes)

    @property
    def overall_ratio(self) -> float:
        if self.compressed_bytes == 0:
            raise ValueError("campaign is empty")
        return self.raw_bytes / self.compressed_bytes

    def field_ratio(self, name: str) -> float:
        rows = [o for o in self.outcomes if o.field == name]
        if not rows:
            raise KeyError(f"no outcomes recorded for field {name!r}")
        raw = sum(o.raw_bytes for o in rows)
        comp = sum(o.compressed_bytes for o in rows)
        return raw / comp

    def snapshot_ratio(self, redshift: float) -> float:
        rows = [o for o in self.outcomes if o.redshift == redshift]
        if not rows:
            raise KeyError(f"no outcomes recorded for z={redshift}")
        return sum(o.raw_bytes for o in rows) / sum(o.compressed_bytes for o in rows)

    def as_rows(self) -> list[list[object]]:
        return [
            [o.redshift, o.field, o.eb_avg, o.ratio, o.compressed_bytes]
            for o in self.outcomes
        ]

    def to_table(self, title: str | None = None) -> str:
        """Aligned plain-text table of every outcome (CI-log friendly)."""
        return format_table(
            list(_REPORT_COLUMNS), self.as_rows(), title=title or "campaign report"
        )

    def to_json(self, indent: int | None = 2) -> str:
        """JSON export of per-snapshot trends plus the run totals.

        The flat ``outcomes`` records are what the stream ledger and CI
        artifact uploads ingest; totals ride along for quick dashboards.
        """
        return json.dumps(
            {
                "raw_bytes": self.raw_bytes,
                "compressed_bytes": self.compressed_bytes,
                "overall_ratio": self.overall_ratio if self.outcomes else None,
                # Additive since PR 9: per-phase seconds *and* counts
                # (as_dict() would drop the counts).
                "timings": self.timings.phase_stats(),
                "outcomes": [
                    dict(zip(_REPORT_COLUMNS, row)) for row in self.as_rows()
                ],
            },
            indent=indent,
            sort_keys=True,
        )

    @property
    def timings(self) -> TimingBreakdown:
        """Per-phase timings merged across every compressed field.

        The campaign-level §4.3 overhead view: e.g.
        ``report.timings.overhead_ratio("features", "compress")``.
        """
        merged = TimingBreakdown()
        for o in self.outcomes:
            merged.merge(o.result.timings)
        return merged


class CompressionCampaign:
    """Adaptive compression of whole snapshots across a dump schedule.

    Parameters
    ----------
    decomposition:
        Rank layout shared by every field.
    field_specs:
        Field name -> :class:`FieldSpec`; fields without an entry use the
        default spec.  A spec's ``compressor`` pins that field to one
        configuration.
    compressor:
        Error-bounded compressor shared across fields — an instance, a
        :class:`~repro.compression.api.CompressorSpec` (or spec string),
        or ``None`` for the registry default (plain SZ).
    candidates:
        Compressor candidate slate: when given, each field's compressor
        is *selected* at calibration time by
        :func:`~repro.core.selection.select_compressor` (fixed-rate
        candidates that violate the field's bound are rejected with the
        violation quantified).
    settings:
        Optimizer settings.
    backend:
        Execution backend (registry name or instance) used to compress
        every field; default is the serial rank loop.  A
        :class:`~repro.parallel.backends.ProcessBackend` keeps its
        worker pool alive across fields and snapshots — call
        :meth:`close` when done.

    Examples
    --------
    >>> from repro.sim.nyx import NyxSimulator
    >>> from repro.parallel.decomposition import BlockDecomposition
    >>> sim = NyxSimulator(shape=(16, 16, 16), seed=0)
    >>> dec = BlockDecomposition((16, 16, 16), blocks=2)
    >>> campaign = CompressionCampaign(dec)
    >>> campaign.calibrate(sim.snapshot(z=2.0))
    >>> report = campaign.compress_snapshot(sim.snapshot(z=1.0))
    >>> report.overall_ratio > 1.0
    True
    """

    def __init__(
        self,
        decomposition: BlockDecomposition,
        field_specs: dict[str, FieldSpec] | None = None,
        compressor: "Compressor | CompressorSpec | str | None" = None,
        settings: OptimizerSettings | None = None,
        backend: str | ExecutionBackend | None = None,
        candidates: "list[CompressorSpec | str] | None" = None,
    ) -> None:
        self.decomposition = decomposition
        self.field_specs = dict(field_specs or {})
        self.compressor = resolve_compressor(compressor)
        self.settings = settings or OptimizerSettings()
        self.controller = InSituController(
            decomposition,
            field_specs=self.field_specs,
            compressor=self.compressor,
            settings=self.settings,
            backend=backend,
            candidates=candidates,
            recalibrate="never",
            warm_start=False,
        )
        self.report = CampaignReport()

    @property
    def backend(self) -> ExecutionBackend:
        return self.controller.backend

    @property
    def calibrations(self) -> Mapping[str, CalibrationResult]:
        """Read-only view of the controller's per-field model fits."""
        return self.controller.calibrations

    @property
    def selections(self):
        """Per-field compressor-selection outcomes (``candidates`` mode)."""
        return self.controller.selections

    def close(self) -> None:
        """Release backend resources (e.g. a process worker pool)."""
        self.controller.close()

    def __enter__(self) -> "CompressionCampaign":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def spec_for(self, name: str) -> FieldSpec:
        return self.controller.spec_for(name)

    # -- calibration --------------------------------------------------------

    def calibrate(self, snapshot: NyxSnapshot, max_partitions: int = 24, seed: int = 0) -> None:
        """Fit the rate model per field (offline, once per campaign)."""
        self.controller.prime(snapshot, max_partitions=max_partitions, seed=seed)

    # -- per-snapshot compression --------------------------------------------

    def compress_snapshot(self, snapshot: NyxSnapshot) -> CampaignReport:
        """Adaptively compress every field; returns the cumulative report."""
        if not self.controller.calibrations:
            raise RuntimeError("call calibrate() before compressing snapshots")
        for outcome in self.controller.process_snapshot(snapshot):
            self.report.outcomes.append(
                FieldOutcome(
                    field=outcome.field,
                    redshift=outcome.redshift,
                    eb_avg=outcome.eb_avg,
                    result=outcome.result,
                )
            )
        return self.report
