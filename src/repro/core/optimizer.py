"""Per-partition error-bound optimization (§3.6).

Three entry points:

- :func:`optimize_for_spectrum` — power-spectrum constraint: the FFT
  error model (Eq. 10) depends only on the *average* bound, so the
  optimizer redistributes bounds at fixed average to equalize marginal
  bit cost (Eq. 16 closed form + clamping),
- :func:`optimize_for_halo` — halo-mass budget (Eq. 11): the constraint
  weights each partition by its boundary-cell rate, so feature-dense
  partitions are pushed toward smaller bounds,
- :func:`optimize_combined` — the paper's §3.6 strategy for baryon
  density: solve for the spectrum, check the halo budget; if violated,
  solve for the halo budget and use it as a per-partition cap
  ("boundary condition").
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.config import HaloQualitySpec, OptimizerSettings
from repro.core.features import PartitionFeatures
from repro.models.halo_error import FAULT_PROBABILITY, halo_mass_error_budget
from repro.models.rate_model import RateModel, optimal_error_bounds
from repro.util.validation import check_positive

__all__ = [
    "OptimizationResult",
    "optimize_for_spectrum",
    "optimize_for_halo",
    "optimize_combined",
    "rank_order_mean",
    "local_protocol_bound",
]


def rank_order_mean(values: Sequence[float]) -> float:
    """Mean via a left-fold sum in rank order.

    This is bit-identical to the SPMD protocol's
    ``allreduce("sum") / size`` (which folds the per-rank scalars
    left-to-right), unlike ``np.mean``'s pairwise summation.  Using it on
    both the serial and distributed paths keeps the local-normalization
    protocol deterministic across execution backends.
    """
    if len(values) == 0:
        raise ValueError("need at least one value")
    acc = float(values[0])
    for v in values[1:]:
        acc = acc + float(v)
    return acc / len(values)


def local_protocol_bound(
    mean_abs: float,
    global_mean: float,
    rate_model: RateModel,
    eb_avg: float,
    settings: OptimizerSettings,
    global_coefficient: float | None = None,
) -> float:
    """One rank's bound under the paper's local protocol (Eq. 16 + clamp).

    Every rank evaluates the closed form against the coefficient of the
    *global mean* feature (obtained from a single allreduce); no
    renormalization happens, so the average-bound constraint holds only
    approximately.  This scalar arithmetic *is* the local branch of
    :func:`optimize_for_spectrum` (which calls it per partition), so the
    serial, SPMD and ledger-replay paths agree bitwise.  Pass
    ``global_coefficient`` to reuse an already-evaluated
    ``predict_coefficient(global_mean)`` — same value, fewer model
    evaluations.
    """
    c_m = float(rate_model.predict_coefficient(mean_abs))
    c_a = (
        float(rate_model.predict_coefficient(global_mean))
        if global_coefficient is None
        else global_coefficient
    )
    c = rate_model.exponent
    eb = eb_avg * (c_m / c_a) ** (1.0 / (1.0 - c))
    return float(
        np.clip(eb, eb_avg / settings.clamp_factor, eb_avg * settings.clamp_factor)
    )


@dataclass
class OptimizationResult:
    """Per-partition bounds plus diagnostics."""

    ebs: np.ndarray
    eb_avg_target: float
    constraint: str  # "spectrum", "halo", or "combined"
    predicted_bitrates: np.ndarray
    halo_budget_used: float | None = None
    halo_constrained: bool = False

    @property
    def eb_mean(self) -> float:
        return float(self.ebs.mean())

    @property
    def predicted_mean_bitrate(self) -> float:
        return float(self.predicted_bitrates.mean())


def _coefficients(features: Sequence[PartitionFeatures], model: RateModel) -> np.ndarray:
    if not features:
        raise ValueError("need at least one partition's features")
    means = np.array([f.mean_abs for f in features], dtype=np.float64)
    return np.asarray(model.predict_coefficient(means), dtype=np.float64)


def optimize_for_spectrum(
    features: Sequence[PartitionFeatures],
    rate_model: RateModel,
    eb_avg: float,
    settings: OptimizerSettings | None = None,
) -> OptimizationResult:
    """Maximize ratio at fixed average bound (power-spectrum constraint).

    With ``settings.normalization == "local"`` the paper's cheap protocol
    is used: Eq. 16 evaluated against the coefficient of the global mean
    feature, no renormalization (the average-bound constraint then holds
    only approximately; the clamp keeps the drift small).
    """
    settings = settings or OptimizerSettings()
    eb_avg = check_positive(eb_avg, "eb_avg")
    coeffs = _coefficients(features, rate_model)
    c = rate_model.exponent

    if settings.normalization == "local":
        global_mean = rank_order_mean([f.mean_abs for f in features])
        # Element-by-element scalar arithmetic, exactly as each rank
        # solves its own bound in the distributed protocol: NumPy's
        # vectorized power can differ from scalar ``pow`` in the last
        # ulp on some inputs, which would break bitwise backend
        # equivalence (and ledger replay) for the local protocol.  The
        # global-mean coefficient is the same for every rank, so it is
        # evaluated once and shared.
        c_a = float(rate_model.predict_coefficient(global_mean))
        ebs = np.array(
            [
                local_protocol_bound(
                    f.mean_abs,
                    global_mean,
                    rate_model,
                    eb_avg,
                    settings,
                    global_coefficient=c_a,
                )
                for f in features
            ],
            dtype=np.float64,
        )
    else:
        # constraint_mode "paper" fixes the average bound (Eq. 10);
        # "rms" fixes the root-mean-square bound (the exact variance
        # combination), which redistributes more cautiously.
        constraint = "mean" if settings.constraint_mode == "paper" else "rms"
        ebs = optimal_error_bounds(
            coeffs,
            eb_avg,
            c,
            weights=None,
            clamp_factor=settings.clamp_factor,
            constraint=constraint,
        )
    return OptimizationResult(
        ebs=ebs,
        eb_avg_target=eb_avg,
        constraint="spectrum",
        predicted_bitrates=coeffs * ebs**c,
    )


def optimize_for_halo(
    features: Sequence[PartitionFeatures],
    rate_model: RateModel,
    halo: HaloQualitySpec,
    settings: OptimizerSettings | None = None,
) -> OptimizationResult:
    """Maximize ratio subject to the halo-mass budget (Eq. 11).

    The constraint ``t_boundary * p_fault * sum_m rate_m * eb_m <=
    mass_budget`` is linear in the bounds with weights equal to the
    boundary-cell rates, so the same closed form applies with those
    weights.
    """
    settings = settings or OptimizerSettings()
    coeffs = _coefficients(features, rate_model)
    c = rate_model.exponent
    rates = np.array(
        [f.effective_cell_rate if f.effective_cell_rate is not None else np.nan for f in features]
    )
    if np.isnan(rates).any():
        raise ValueError(
            "halo optimization requires effective_cell_rate in every partition's "
            "features (extract with t_boundary set)"
        )

    # Linear budget on sum(rate_m * eb_m).
    weighted_sum_budget = halo.mass_budget / (halo.t_boundary * FAULT_PROBABILITY)
    total_weight = float(rates.sum())
    if total_weight <= 0:
        # No boundary cells anywhere: the halo constraint is inactive.
        raise ValueError(
            "no partition has boundary cells; halo constraint is vacuous — "
            "use optimize_for_spectrum instead"
        )
    eb_avg_equiv = weighted_sum_budget / total_weight
    ebs = optimal_error_bounds(
        coeffs,
        eb_avg_equiv,
        c,
        weights=rates,
        clamp_factor=settings.clamp_factor,
    )
    return OptimizationResult(
        ebs=ebs,
        eb_avg_target=eb_avg_equiv,
        constraint="halo",
        predicted_bitrates=coeffs * ebs**c,
        halo_budget_used=halo_mass_error_budget(halo.t_boundary, rates, ebs),
    )


def optimize_combined(
    features: Sequence[PartitionFeatures],
    rate_model: RateModel,
    eb_avg: float,
    halo: HaloQualitySpec,
    settings: OptimizerSettings | None = None,
) -> OptimizationResult:
    """§3.6's two-constraint strategy for baryon density.

    1. Optimize for the power spectrum.
    2. Evaluate the resulting halo-mass error (Eq. 11).  If within
       budget, accept.
    3. Otherwise optimize for the halo budget and cap the spectrum
       solution partition-wise by the halo solution (the "boundary
       condition") — both constraints then hold: the average bound can
       only decrease, and the weighted halo sum is below budget.
    """
    settings = settings or OptimizerSettings()
    spec_result = optimize_for_spectrum(features, rate_model, eb_avg, settings)
    rates = np.array(
        [f.effective_cell_rate if f.effective_cell_rate is not None else np.nan for f in features]
    )
    if np.isnan(rates).any():
        raise ValueError("combined optimization requires effective_cell_rate features")
    budget_at_spec = halo_mass_error_budget(halo.t_boundary, rates, spec_result.ebs)
    if budget_at_spec <= halo.mass_budget or rates.sum() == 0:
        return OptimizationResult(
            ebs=spec_result.ebs,
            eb_avg_target=eb_avg,
            constraint="combined",
            predicted_bitrates=spec_result.predicted_bitrates,
            halo_budget_used=budget_at_spec,
            halo_constrained=False,
        )
    halo_result = optimize_for_halo(features, rate_model, halo, settings)
    ebs = np.minimum(spec_result.ebs, halo_result.ebs)
    coeffs = _coefficients(features, rate_model)
    return OptimizationResult(
        ebs=ebs,
        eb_avg_target=eb_avg,
        constraint="combined",
        predicted_bitrates=coeffs * ebs**rate_model.exponent,
        halo_budget_used=halo_mass_error_budget(halo.t_boundary, rates, ebs),
        halo_constrained=True,
    )
