"""The paper's primary contribution: fine-grained adaptive configuration.

Given a snapshot partitioned across ranks, select a per-partition error
bound that maximizes the overall compression ratio while keeping the
modeled post-hoc analysis distortion (power spectrum; halo masses for
baryon density) within a user budget — with in situ overhead limited to
cheap per-partition features plus one collective.

- :mod:`repro.core.features` — in situ feature extraction (mean |value|,
  boundary-cell rate),
- :mod:`repro.core.optimizer` — per-partition bound selection (Eq. 16
  closed form with §3.6's clamping), spectrum- and halo-constrained,
- :mod:`repro.core.pipeline` — the in situ pipeline (serial rank loop or
  thread-SPMD with collectives),
- :mod:`repro.core.baselines` — the traditional static configuration and
  the Foresight-style trial-and-error search,
- :mod:`repro.core.overhead` — overhead accounting for §4.3,
- :mod:`repro.core.selection` — per-field compressor selection over the
  capability-typed registry (§2.2 as a measured runtime decision).
"""

from repro.core.config import HaloQualitySpec, OptimizerSettings, QualityTargets
from repro.core.features import PartitionFeatures, extract_features
from repro.core.optimizer import (
    OptimizationResult,
    optimize_combined,
    optimize_for_halo,
    optimize_for_spectrum,
)
from repro.core.pipeline import AdaptiveCompressionPipeline, SnapshotResult
from repro.core.baselines import StaticBaseline, TrialAndErrorSearch
from repro.core.overhead import OverheadReport, measure_overhead
from repro.core.campaign import CompressionCampaign, FieldSpec
from repro.core.selection import (
    CandidateVerdict,
    SelectionResult,
    default_candidates,
    derive_eb_budget,
    derive_halo_params,
    select_compressor,
)

__all__ = [
    "QualityTargets",
    "OptimizerSettings",
    "HaloQualitySpec",
    "PartitionFeatures",
    "extract_features",
    "OptimizationResult",
    "optimize_for_spectrum",
    "optimize_for_halo",
    "optimize_combined",
    "AdaptiveCompressionPipeline",
    "SnapshotResult",
    "StaticBaseline",
    "TrialAndErrorSearch",
    "OverheadReport",
    "CompressionCampaign",
    "FieldSpec",
    "measure_overhead",
    "CandidateVerdict",
    "SelectionResult",
    "default_candidates",
    "derive_eb_budget",
    "derive_halo_params",
    "select_compressor",
]
