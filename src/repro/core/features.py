"""In situ per-partition feature extraction (§3.6, §4.3).

The whole point of the paper's design is that the optimizer needs only
*cheap* per-partition summaries:

- ``mean |value|`` — predicts the rate coefficient ``C_m``
  (1-1.5% of compression time on CPUs per the paper),
- the boundary-cell rate around ``t_boundary`` — the halo-finder
  feature, extracted only for the density field (up to 5%),
- optionally the value-histogram entropy, the more expensive feature the
  paper considered and rejected (kept for the ablation bench).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.halo_error import effective_cell_rate

__all__ = ["PartitionFeatures", "extract_features", "histogram_entropy"]


@dataclass(frozen=True)
class PartitionFeatures:
    """Summaries of one partition consumed by the optimizer."""

    rank: int
    n_cells: int
    mean_abs: float
    effective_cell_rate: float | None = None  # boundary cells per unit eb
    entropy: float | None = None

    def __post_init__(self) -> None:
        if self.n_cells <= 0:
            raise ValueError("n_cells must be positive")
        if self.mean_abs < 0:
            raise ValueError("mean_abs must be non-negative")


def histogram_entropy(partition: np.ndarray, bins: int = 256) -> float:
    """Shannon entropy (bits) of the value histogram — the costly feature.

    Computed on the partition's native dtype: ``min``/``max`` and
    ``np.histogram`` (which bins against float64 edges internally)
    handle float32 fields directly, so the old full-array float64
    ravel copy is never materialized.
    """
    arr = np.asarray(partition)
    lo, hi = float(arr.min()), float(arr.max())
    if hi == lo:
        return 0.0
    counts, _ = np.histogram(arr, bins=bins, range=(lo, hi))
    p = counts[counts > 0] / arr.size
    return float(-(p * np.log2(p)).sum())


def extract_features(
    partition: np.ndarray,
    rank: int = 0,
    t_boundary: float | None = None,
    reference_eb: float = 1.0,
    with_entropy: bool = False,
) -> PartitionFeatures:
    """Extract the in situ features of one partition.

    ``t_boundary`` enables the halo feature (density fields only).
    """
    arr = np.asarray(partition)
    if arr.size == 0:
        raise ValueError("partition must be non-empty")
    rate = None
    if t_boundary is not None:
        rate = effective_cell_rate(
            np.asarray(arr, dtype=np.float64), t_boundary, reference_eb
        )
    return PartitionFeatures(
        rank=rank,
        n_cells=int(arr.size),
        mean_abs=float(np.mean(np.abs(arr))),
        effective_cell_rate=rate,
        entropy=histogram_entropy(arr) if with_entropy else None,
    )
