"""The in situ adaptive compression pipeline (§3.1/§3.6).

Per snapshot and field, the protocol each rank follows is:

1. extract its partition's features (mean |value|; boundary-cell rate
   for the density field),
2. exchange one scalar per rank (``allgather`` in "exact" mode, a single
   ``allreduce`` of the mean in the paper's "local" mode),
3. evaluate the closed-form optimizer for its own bound,
4. compress its partition with that bound.

The same pipeline runs in three modes: a serial rank loop (default), a
thread-SPMD execution with real collectives (:func:`run_insitu_spmd`),
or against a caller-provided communicator.  Timings are broken down per
phase so the §4.3 overhead claims can be measured rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compression.stats import CompressionStats
from repro.compression.sz import CompressedBlock, SZCompressor, decompress
from repro.core.config import HaloQualitySpec, OptimizerSettings
from repro.core.features import PartitionFeatures, extract_features
from repro.core.optimizer import (
    OptimizationResult,
    optimize_combined,
    optimize_for_spectrum,
)
from repro.models.rate_model import RateModel
from repro.parallel.decomposition import BlockDecomposition
from repro.parallel.executor import run_spmd
from repro.util.timer import TimingBreakdown

__all__ = ["AdaptiveCompressionPipeline", "SnapshotResult"]


@dataclass
class SnapshotResult:
    """Everything produced by compressing one field of one snapshot."""

    ebs: np.ndarray
    blocks: list[CompressedBlock]
    features: list[PartitionFeatures]
    optimization: OptimizationResult | None
    timings: TimingBreakdown = field(repr=False, default_factory=TimingBreakdown)

    @property
    def stats(self) -> CompressionStats:
        return CompressionStats.from_blocks(self.blocks)

    @property
    def overall_ratio(self) -> float:
        return self.stats.overall_ratio

    @property
    def overall_bit_rate(self) -> float:
        return self.stats.overall_bit_rate

    def reconstruct(self, decomposition: BlockDecomposition, dtype=np.float64) -> np.ndarray:
        """Decompress all partitions and reassemble the global field."""
        parts = [decompress(b) for b in self.blocks]
        return decomposition.assemble(parts, dtype=dtype)

    def eb_map(self, decomposition: BlockDecomposition) -> np.ndarray:
        """Per-partition bounds on the block grid (Figs. 11/17)."""
        return decomposition.per_partition_map(self.ebs)


class AdaptiveCompressionPipeline:
    """Fine-grained adaptive lossy compression of partitioned snapshots.

    Parameters
    ----------
    rate_model:
        Calibrated Eq. 15 model
        (:func:`repro.models.calibration.calibrate_rate_model`).
    compressor:
        Error-bounded compressor (default ``SZCompressor()``).
    settings:
        Optimizer knobs (clamping, normalization protocol).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.models.rate_model import RateModel
    >>> from repro.parallel.decomposition import BlockDecomposition
    >>> model = RateModel(exponent=-0.8, coef_alpha=0.0, coef_beta=0.3)
    >>> pipe = AdaptiveCompressionPipeline(model)
    >>> data = np.random.default_rng(0).random((16, 16, 16)).astype(np.float32)
    >>> dec = BlockDecomposition((16, 16, 16), blocks=2)
    >>> result = pipe.run(data, dec, eb_avg=0.01)
    >>> len(result.blocks) == dec.n_partitions
    True
    """

    def __init__(
        self,
        rate_model: RateModel,
        compressor: SZCompressor | None = None,
        settings: OptimizerSettings | None = None,
    ) -> None:
        self.rate_model = rate_model
        self.compressor = compressor or SZCompressor()
        self.settings = settings or OptimizerSettings()

    # -- serial execution -------------------------------------------------

    def run(
        self,
        data: np.ndarray,
        decomposition: BlockDecomposition,
        eb_avg: float,
        halo: HaloQualitySpec | None = None,
    ) -> SnapshotResult:
        """Compress one field adaptively (serial rank loop).

        ``halo`` activates the combined §3.6 optimization (density
        fields); otherwise the spectrum constraint alone applies.
        """
        timings = TimingBreakdown()
        views = decomposition.partition_views(data)

        features: list[PartitionFeatures] = []
        with timings.phase("features"):
            for rank, view in enumerate(views):
                features.append(
                    extract_features(
                        view,
                        rank=rank,
                        t_boundary=halo.t_boundary if halo else None,
                        reference_eb=halo.reference_eb if halo else 1.0,
                    )
                )

        with timings.phase("optimize"):
            if halo is not None:
                opt = optimize_combined(
                    features, self.rate_model, eb_avg, halo, self.settings
                )
            else:
                opt = optimize_for_spectrum(
                    features, self.rate_model, eb_avg, self.settings
                )

        blocks: list[CompressedBlock] = []
        with timings.phase("compress"):
            for view, eb in zip(views, opt.ebs):
                blocks.append(self.compressor.compress(view, float(eb)))

        return SnapshotResult(
            ebs=opt.ebs, blocks=blocks, features=features, optimization=opt, timings=timings
        )

    # -- SPMD execution ----------------------------------------------------

    def run_insitu_spmd(
        self,
        data: np.ndarray,
        decomposition: BlockDecomposition,
        eb_avg: float,
        halo: HaloQualitySpec | None = None,
    ) -> SnapshotResult:
        """Compress with one thread per rank and real collectives.

        Produces the same bounds and payload sizes as :meth:`run`
        (verified by an integration test); exists to exercise the actual
        communication pattern of the in situ deployment.
        """
        n = decomposition.n_partitions

        def rank_fn(comm, pipeline=self):
            rank = comm.rank
            view = decomposition[rank].view(data)
            feat = extract_features(
                view,
                rank=rank,
                t_boundary=halo.t_boundary if halo else None,
                reference_eb=halo.reference_eb if halo else 1.0,
            )
            if pipeline.settings.normalization == "local" and halo is None:
                # The paper's cheap protocol: one allreduce of the mean.
                global_mean = comm.allreduce(feat.mean_abs, op="sum") / comm.size
                c_m = float(pipeline.rate_model.predict_coefficient(feat.mean_abs))
                c_a = float(pipeline.rate_model.predict_coefficient(global_mean))
                c = pipeline.rate_model.exponent
                eb = eb_avg * (c_m / c_a) ** (1.0 / (1.0 - c))
                eb = float(
                    np.clip(
                        eb,
                        eb_avg / pipeline.settings.clamp_factor,
                        eb_avg * pipeline.settings.clamp_factor,
                    )
                )
                all_feats = comm.allgather(feat)
            else:
                # Exact protocol: allgather scalar features, every rank
                # solves the same deterministic optimization.
                all_feats = comm.allgather(feat)
                if halo is not None:
                    opt = optimize_combined(
                        all_feats, pipeline.rate_model, eb_avg, halo, pipeline.settings
                    )
                else:
                    opt = optimize_for_spectrum(
                        all_feats, pipeline.rate_model, eb_avg, pipeline.settings
                    )
                eb = float(opt.ebs[rank])
            block = pipeline.compressor.compress(view, eb)
            return feat, eb, block

        results = run_spmd(n, rank_fn)
        features = [r[0] for r in results]
        ebs = np.array([r[1] for r in results])
        blocks = [r[2] for r in results]
        if halo is not None:
            opt = optimize_combined(features, self.rate_model, eb_avg, halo, self.settings)
        elif self.settings.normalization != "local":
            opt = optimize_for_spectrum(features, self.rate_model, eb_avg, self.settings)
        else:
            opt = None
        return SnapshotResult(
            ebs=ebs, blocks=blocks, features=features, optimization=opt
        )
