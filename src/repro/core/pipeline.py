"""The in situ adaptive compression pipeline (§3.1/§3.6).

Per snapshot and field, the protocol each rank follows is:

1. extract its partition's features (mean |value|; boundary-cell rate
   for the density field),
2. exchange one scalar per rank (``allgather`` in "exact" mode, a single
   ``allreduce`` of the mean in the paper's "local" mode),
3. evaluate the closed-form optimizer for its own bound,
4. compress its partition with that bound.

*How* the ranks execute is delegated to a pluggable
:class:`~repro.parallel.backends.ExecutionBackend`: a serial rank loop,
one thread per rank with real collectives (the default for
:meth:`AdaptiveCompressionPipeline.run_insitu_spmd`), or a process pool
with shared-memory partition views and batched compression.  Every
backend performs exactly one global optimization per snapshot and merges
per-rank timings, so the §4.3 overhead claims can be measured rather
than assumed on any path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compression.api import (
    Compressor,
    CompressorSpec,
    capabilities_of,
    decompress_any,
    resolve_compressor,
)
from repro.compression.stats import CompressionStats
from repro.compression.sz import CompressedBlock
from repro.core.config import HaloQualitySpec, OptimizerSettings
from repro.core.features import PartitionFeatures
from repro.core.optimizer import OptimizationResult
from repro.models.rate_model import RateModel
from repro.parallel.backends import (
    BackendOutcome,
    ExecutionBackend,
    SerialBackend,
    SnapshotTask,
    get_backend,
)
from repro.parallel.decomposition import BlockDecomposition
from repro.util.timer import TimingBreakdown

__all__ = ["AdaptiveCompressionPipeline", "SnapshotResult"]


@dataclass
class SnapshotResult:
    """Everything produced by compressing one field of one snapshot."""

    ebs: np.ndarray
    blocks: list[CompressedBlock]
    features: list[PartitionFeatures]
    optimization: OptimizationResult | None
    timings: TimingBreakdown = field(repr=False, default_factory=TimingBreakdown)

    @property
    def stats(self) -> CompressionStats:
        return CompressionStats.from_blocks(self.blocks)

    @property
    def overall_ratio(self) -> float:
        return self.stats.overall_ratio

    @property
    def overall_bit_rate(self) -> float:
        return self.stats.overall_bit_rate

    def reconstruct(self, decomposition: BlockDecomposition, dtype=np.float64) -> np.ndarray:
        """Decompress all partitions and reassemble the global field.

        Blocks dispatch through the compressor registry
        (:func:`~repro.compression.api.decompress_any`), so results from
        any registered family reconstruct.
        """
        parts = [decompress_any(b) for b in self.blocks]
        return decomposition.assemble(parts, dtype=dtype)

    def eb_map(self, decomposition: BlockDecomposition) -> np.ndarray:
        """Per-partition bounds on the block grid (Figs. 11/17)."""
        return decomposition.per_partition_map(self.ebs)


class AdaptiveCompressionPipeline:
    """Fine-grained adaptive lossy compression of partitioned snapshots.

    Parameters
    ----------
    rate_model:
        Calibrated Eq. 15 model
        (:func:`repro.models.calibration.calibrate_rate_model`).
    compressor:
        Error-bounded compressor — an instance, a
        :class:`~repro.compression.api.CompressorSpec` (or spec string)
        resolved through the registry, or ``None`` for the registry
        default (plain SZ).  The pipeline's output *is* a per-partition
        bound vector, so the compressor must declare the
        ``error_bounded`` capability; fixed-rate specs raise
        :class:`~repro.compression.api.UnsupportedCapabilityError`
        (pick them apart with
        :func:`~repro.core.selection.select_compressor` instead).
    settings:
        Optimizer knobs (clamping, normalization protocol).
    backend:
        Execution backend for :meth:`run_insitu_spmd` — a registry name
        (``"serial"``, ``"thread"``, ``"process"``) or an
        :class:`~repro.parallel.backends.ExecutionBackend` instance
        (default: the thread-SPMD backend).  All backends produce
        byte-identical payloads; they differ only in scheduling.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.models.rate_model import RateModel
    >>> from repro.parallel.decomposition import BlockDecomposition
    >>> model = RateModel(exponent=-0.8, coef_alpha=0.0, coef_beta=0.3)
    >>> pipe = AdaptiveCompressionPipeline(model)
    >>> data = np.random.default_rng(0).random((16, 16, 16)).astype(np.float32)
    >>> dec = BlockDecomposition((16, 16, 16), blocks=2)
    >>> result = pipe.run(data, dec, eb_avg=0.01)
    >>> len(result.blocks) == dec.n_partitions
    True
    """

    def __init__(
        self,
        rate_model: RateModel,
        compressor: "Compressor | CompressorSpec | str | None" = None,
        settings: OptimizerSettings | None = None,
        backend: str | ExecutionBackend | None = None,
    ) -> None:
        self.rate_model = rate_model
        self.compressor = resolve_compressor(compressor)
        capabilities_of(self.compressor).require(
            "error_bounded",
            "the adaptive pipeline (its output is a per-partition bound vector)",
            who=self.compressor,
        )
        self.settings = settings or OptimizerSettings()
        self.backend = get_backend(backend)

    def close(self) -> None:
        """Release the configured backend's resources (e.g. a worker pool)."""
        self.backend.close()

    def __enter__(self) -> "AdaptiveCompressionPipeline":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- internals ---------------------------------------------------------

    def _task(
        self,
        data: np.ndarray,
        decomposition: BlockDecomposition,
        eb_avg: float,
        halo: HaloQualitySpec | None,
    ) -> SnapshotTask:
        return SnapshotTask(
            data=data,
            decomposition=decomposition,
            eb_avg=eb_avg,
            rate_model=self.rate_model,
            compressor=self.compressor,
            settings=self.settings,
            halo=halo,
        )

    @staticmethod
    def _result(outcome: BackendOutcome) -> SnapshotResult:
        return SnapshotResult(
            ebs=outcome.ebs,
            blocks=outcome.blocks,
            features=outcome.features,
            optimization=outcome.optimization,
            timings=outcome.timings,
        )

    # -- serial execution -------------------------------------------------

    def run(
        self,
        data: np.ndarray,
        decomposition: BlockDecomposition,
        eb_avg: float,
        halo: HaloQualitySpec | None = None,
    ) -> SnapshotResult:
        """Compress one field adaptively (serial rank loop).

        ``halo`` activates the combined §3.6 optimization (density
        fields); otherwise the spectrum constraint alone applies.
        """
        task = self._task(data, decomposition, eb_avg, halo)
        return self._result(SerialBackend().run_snapshot(task))

    # -- backend execution -------------------------------------------------

    def run_insitu_spmd(
        self,
        data: np.ndarray,
        decomposition: BlockDecomposition,
        eb_avg: float,
        halo: HaloQualitySpec | None = None,
        backend: str | ExecutionBackend | None = None,
    ) -> SnapshotResult:
        """Compress via the configured execution backend (default: SPMD
        with one thread per rank and real collectives).

        Produces the same bounds and byte-identical payloads as
        :meth:`run` (property-tested); exists to exercise the actual
        execution pattern of the in situ deployment.  ``backend``
        overrides the pipeline's configured backend for this call: a
        backend *instance* stays caller-owned (its pooled resources are
        reused and left open), while a registry *name* constructs a
        one-shot backend that is closed before returning.
        """
        task = self._task(data, decomposition, eb_avg, halo)
        if backend is None or isinstance(backend, ExecutionBackend):
            resolved = self.backend if backend is None else backend
            return self._result(resolved.run_snapshot(task))
        one_shot = get_backend(backend)
        try:
            return self._result(one_shot.run_snapshot(task))
        finally:
            one_shot.close()
