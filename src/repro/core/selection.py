"""Per-field compressor selection: §2.2 as a measured runtime decision.

The paper *argues* SZ over ZFP in prose — fixed-rate ZFP cannot enforce
an absolute error bound, and the whole rate-quality machinery optimizes
error bounds.  With the capability-typed registry
(:mod:`repro.compression.api`) that argument becomes something the
pipeline can check at runtime: :func:`select_compressor` calibrates every
candidate :class:`~repro.compression.api.CompressorSpec` against a
field, measures whether each candidate can honour the field's derived
quality budget, and picks the cheapest (lowest predicted bitrate)
candidate that can.  Fixed-rate candidates are rejected with a
*quantified* error-bound violation — the measured ``max|err|`` against
the admissible bound — so the §2.2 trade-off appears in the result as
data rather than as a comment.

This module is also the home of the per-field quality-budget inversion
(:func:`derive_eb_budget` / :func:`derive_halo_params`), shared by the
batch campaign and the streaming controller (both re-export them; they
used to live in :mod:`repro.stream.controller`).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field as dataclass_field
from typing import Any

import numpy as np

from repro import telemetry
from repro.compression.api import (
    Compressor,
    CompressorSpec,
    capabilities_of,
    resolve_compressor,
    spec_of,
)
from repro.core.config import FieldSpec
from repro.foresight.evaluator import FieldReference
from repro.foresight.quality import QualityCriteria
from repro.models.calibration import CalibrationResult, RateModelBank
from repro.models.fft_error import (
    spectrum_ratio_tolerance_to_eb,
    sub_threshold_power_estimate,
)
from repro.models.rq_model import RQModel, RQPrediction
from repro.parallel.decomposition import BlockDecomposition
from repro.util.rng import default_rng

__all__ = [
    "derive_eb_budget",
    "derive_halo_params",
    "CandidateVerdict",
    "SelectionResult",
    "select_compressor",
    "default_candidates",
]


# -- per-field quality-budget derivation --------------------------------------


def derive_eb_budget(spec: FieldSpec, ref: FieldReference) -> float:
    """Invert the field's quality spec into an average error bound.

    The §3.3/§3.5 model inversion: the P(k) acceptance band plus the
    sub-threshold power estimate yield the admissible average bound.
    All original-field analyses go through the shared
    :class:`FieldReference` cache, so a budget inversion and a halo-spec
    derivation on the same snapshot pay for one float64 cast and one
    ``rfftn`` between them.
    """
    if spec.eb_override is not None:
        return float(spec.eb_override)
    f64 = ref.f64
    ps = ref.spectrum()
    return float(
        spectrum_ratio_tolerance_to_eb(
            ps,
            f64.size,
            tolerance=spec.spectrum_tolerance,
            k_max=spec.spectrum_k_max,
            confidence_z=spec.confidence_z,
            sub_power_fn=lambda e: sub_threshold_power_estimate(f64, e, stride=2),
            correlated_fraction=spec.correlated_fraction,
        )
    )


def derive_halo_params(spec: FieldSpec, ref: FieldReference) -> tuple[float, float] | None:
    """Halo-constraint inputs ``(t_boundary, mass_budget)`` for a field.

    Returns ``None`` when the field has no halos above the percentile
    threshold (the constraint is vacuous).  The reference-eb part of the
    :class:`~repro.core.config.HaloQualitySpec` depends on the chosen
    average bound and is attached at decision time.
    """
    t_boundary = float(np.percentile(ref.f64, spec.halo_percentile))
    catalog = ref.halos(t_boundary)
    if catalog.n_halos == 0:
        return None
    return t_boundary, float(spec.halo_mass_fraction * float(catalog.masses.sum()))


# -- the selection stage ------------------------------------------------------


def default_candidates() -> list[CompressorSpec]:
    """The stock candidate slate: the SZ default vs the ZFP-style codec.

    Exactly the paper's §2.2 comparison, expressed as specs.
    """
    return [CompressorSpec.sz(), CompressorSpec.zfp_like()]


@dataclass(frozen=True)
class CandidateVerdict:
    """What selection concluded about one candidate spec on one field.

    ``eb_violation`` quantifies §2.2 for ineligible fixed-rate
    candidates: the measured ``max|err| / eb_avg`` factor by which the
    candidate overshoots the admissible bound (``> 1`` means the quality
    target cannot be guaranteed).
    """

    spec: CompressorSpec
    eligible: bool
    reason: str
    predicted_bit_rate: float | None = None
    measured_bit_rate: float | None = None
    max_abs_error: float | None = None
    eb_violation: float | None = None
    predicted_psnr_db: float | None = None
    predicted_quality: RQPrediction | None = dataclass_field(
        default=None, repr=False, compare=False
    )
    calibration: CalibrationResult | None = dataclass_field(
        default=None, repr=False, compare=False
    )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary (what the stream ledger records).

        Model-mode keys appear only when predictions were made, so
        exact/estimate-mode ledger records keep their pre-R-Q shape.
        """
        out: dict[str, Any] = {
            "spec": self.spec.to_dict(),
            "eligible": self.eligible,
            "reason": self.reason,
            "predicted_bit_rate": self.predicted_bit_rate,
            "measured_bit_rate": self.measured_bit_rate,
            "max_abs_error": self.max_abs_error,
            "eb_violation": self.eb_violation,
        }
        if self.predicted_psnr_db is not None:
            out["predicted_psnr_db"] = self.predicted_psnr_db
        if self.predicted_quality is not None:
            out["predicted_quality"] = self.predicted_quality.to_dict()
        return out


@dataclass
class SelectionResult:
    """Outcome of :func:`select_compressor` for one field."""

    field: str
    eb_avg: float
    chosen: CompressorSpec
    compressor: Any
    verdicts: list[CandidateVerdict]

    @property
    def chosen_verdict(self) -> CandidateVerdict:
        return self.verdict_for(self.chosen)

    def verdict_for(self, spec: CompressorSpec) -> CandidateVerdict:
        for v in self.verdicts:
            if v.spec == spec:
                return v
        raise KeyError(f"no verdict recorded for {spec}")

    @property
    def rejected(self) -> list[CandidateVerdict]:
        return [v for v in self.verdicts if not v.eligible]

    @property
    def calibration(self) -> CalibrationResult | None:
        """The chosen candidate's rate-model fit (``None`` if measured-only)."""
        return self.chosen_verdict.calibration

    def to_dict(self) -> dict[str, Any]:
        return {
            "field": self.field,
            "eb_avg": self.eb_avg,
            "chosen": self.chosen.to_dict(),
            "verdicts": [v.to_dict() for v in self.verdicts],
        }


#: Relative slack on the model-mode quality gate.  The admissible bound
#: comes from bisecting the *same* spectrum-distortion model to equality
#: with the tolerance, so a field probed at its own budget predicts a
#: deviation of exactly the tolerance up to bisection error; the slack
#: keeps that boundary case eligible (matching exact mode) while still
#: rejecting bounds that clearly overshoot the quality target.
_QUALITY_GATE_SLACK = 0.05


def _sample_views(
    views: list[np.ndarray], sample_partitions: int, seed: int
) -> list[np.ndarray]:
    """The seeded partition sample both measured and modeled probes use."""
    if len(views) <= sample_partitions:
        return [np.asarray(v) for v in views]
    rng = default_rng(seed)
    idx = np.sort(
        rng.choice(np.arange(len(views)), size=sample_partitions, replace=False)
    )
    return [np.asarray(views[i]) for i in idx]


def _count_probe(kind: str) -> None:
    """Telemetry counter for one candidate probe (no-op when disarmed)."""
    if telemetry.enabled():
        telemetry.get_registry().counter(f"selection.probes.{kind}").inc()


def _measure_fixed_rate(
    comp: Any,
    views: list[np.ndarray],
    eb_avg: float,
    sample_partitions: int,
    seed: int,
) -> tuple[float, float]:
    """Measured (bit rate, max abs error) of a fixed-rate candidate.

    Compresses a seeded sample of partitions and decompresses them —
    the candidate has no model to predict with, so its cost and its
    error-bound behaviour are *measured*, exactly the §4.1 empirical
    methodology scoped down to a few partitions.
    """
    total_bytes = 0
    total_elems = 0
    max_err = 0.0
    for view in _sample_views(views, sample_partitions, seed):
        block = comp.compress(view, eb_avg)
        recon = comp.decompress(block)
        total_bytes += int(block.nbytes)
        total_elems += int(block.n_elements)
        max_err = max(max_err, float(np.max(np.abs(recon - np.asarray(view, dtype=np.float64)))))
    return 8.0 * total_bytes / total_elems, max_err


def select_compressor(
    data: np.ndarray,
    decomposition: BlockDecomposition,
    candidates: "Sequence[Compressor | CompressorSpec | str] | None" = None,
    field_spec: FieldSpec | None = None,
    field: str = "field",
    eb_avg: float | None = None,
    reference: FieldReference | None = None,
    bank: RateModelBank | None = None,
    probe_mode: str = "exact",
    max_partitions: int = 32,
    sample_partitions: int = 8,
    seed: int = 0,
    require_error_bounded: bool = False,
) -> SelectionResult:
    """Pick the cheapest candidate compressor that can honour the quality targets.

    For every candidate spec:

    - **error-bounded** candidates are calibrated (through ``bank``, so
      repeated selections share fits) and scored by the rate model's
      predicted mean bitrate at the field's admissible average bound;
    - **fixed-rate** candidates are *measured* on a partition sample:
      compress, decompress, compare ``max|err|`` against the bound.  A
      violation disqualifies the candidate and is recorded quantified
      (``eb_violation = max|err| / eb_avg``) — the paper's §2.2
      SZ-over-ZFP argument reproduced as a runtime decision.

    The admissible bound comes from ``eb_avg`` if given, else from the
    §3.3/§3.5 budget inversion of ``field_spec`` (default
    :class:`~repro.core.config.FieldSpec`, the paper's targets).

    ``require_error_bounded=True`` additionally disqualifies fixed-rate
    candidates even when they happen to stay within the bound on the
    measured sample — the adaptive pipeline's per-partition bound vector
    needs a *guarantee*, not a sample — which is what the streaming
    controller passes.

    ``probe_mode="model"`` swaps the trial compressions for the
    closed-form ratio-quality engine (:mod:`repro.models.rq_model`):
    error-bounded candidates are calibrated codec-free, probed once at
    the admissible bound (one batched quantization pass over a seeded
    partition sample), and gated on the *predicted* quality-at-bound —
    their verdicts carry the predicted PSNR and spectrum/halo verdicts.
    Error-bounded candidates without the ``supports_estimate``
    capability raise
    :class:`~repro.compression.api.UnsupportedCapabilityError`.
    Fixed-rate candidates are still measured (a codec with no
    quantization stage has nothing to model), which keeps their §2.2
    violation quantified and the slate's verdicts identical to exact
    mode while eliminating every error-bounded trial compression.

    Raises ``ValueError`` when no candidate is eligible, with every
    verdict in the message.
    """
    if not candidates:
        candidates = default_candidates()
    if probe_mode not in ("exact", "estimate", "model"):
        raise ValueError(
            f"probe_mode must be 'exact', 'estimate' or 'model', got {probe_mode!r}"
        )
    model_mode = probe_mode == "model"
    field_spec = field_spec or FieldSpec()
    ref = reference
    if eb_avg is None:
        ref = ref if ref is not None else FieldReference(data)
        eb_avg = derive_eb_budget(field_spec, ref)
    eb_avg = float(eb_avg)
    if eb_avg <= 0:
        raise ValueError(f"eb_avg must be positive, got {eb_avg}")
    if bank is None:  # NB: an empty bank is falsy (it has __len__)
        bank = RateModelBank(
            probe_mode=probe_mode, max_partitions=max_partitions, seed=seed
        )
    views = decomposition.partition_views(data)

    rq: RQModel | None = None
    if model_mode:
        ref = ref if ref is not None else FieldReference(data)
        rq = RQModel(
            ref,
            QualityCriteria(
                spectrum_tolerance=field_spec.spectrum_tolerance,
                spectrum_k_max=field_spec.spectrum_k_max,
            ),
            field=field,
            confidence_z=field_spec.confidence_z,
            correlated_fraction=field_spec.correlated_fraction,
        )

    verdicts: list[CandidateVerdict] = []
    scored: list[tuple[float, int, Any]] = []  # (predicted rate, index, instance)
    for cand in candidates:
        comp = resolve_compressor(cand)
        caps = capabilities_of(comp)
        spec = spec_of(comp) or CompressorSpec.make(type(comp).__name__)
        if caps.error_bounded:
            if rq is not None:
                caps.require(
                    "supports_estimate",
                    'probe_mode="model" (closed-form ratio-quality prediction)',
                    who=comp,
                )
            try:
                calibration = bank.calibrate(
                    field, views, compressor=comp, eb_scale=eb_avg
                )
            except ValueError as exc:
                verdicts.append(
                    CandidateVerdict(
                        spec=spec,
                        eligible=False,
                        reason=f"rejected: rate-model calibration failed ({exc})",
                    )
                )
                continue
            model = calibration.rate_model
            predicted = float(
                np.mean(model.predict_bitrate(calibration.features, eb_avg))
            )
            prediction: RQPrediction | None = None
            if rq is not None:
                _count_probe("model")
                prediction = rq.probe(
                    comp, _sample_views(views, sample_partitions, seed), eb_avg
                )
                gate = rq.criteria.spectrum_tolerance * (1.0 + _QUALITY_GATE_SLACK)
                if not prediction.passed and prediction.spectrum_worst_deviation > gate:
                    verdicts.append(
                        CandidateVerdict(
                            spec=spec,
                            eligible=False,
                            reason=(
                                f"rejected: predicted spectrum deviation "
                                f"{prediction.spectrum_worst_deviation:.4g} exceeds "
                                f"tolerance {rq.criteria.spectrum_tolerance:.4g} "
                                f"at eb={eb_avg:.4g}"
                            ),
                            predicted_bit_rate=predicted,
                            predicted_psnr_db=prediction.predicted_psnr_db,
                            predicted_quality=prediction,
                            calibration=calibration,
                        )
                    )
                    continue
            else:
                _count_probe(probe_mode)
            reason = (
                f"error-bounded; predicted {predicted:.3f} bits/value "
                f"at eb={eb_avg:.4g}"
            )
            if prediction is not None:
                reason += (
                    f"; predicted quality {prediction.predicted_psnr_db:.1f} dB "
                    f"PSNR, spectrum deviation "
                    f"{prediction.spectrum_worst_deviation:.4g}"
                )
            verdicts.append(
                CandidateVerdict(
                    spec=spec,
                    eligible=True,
                    reason=reason,
                    predicted_bit_rate=predicted,
                    predicted_psnr_db=(
                        None if prediction is None else prediction.predicted_psnr_db
                    ),
                    predicted_quality=prediction,
                    calibration=calibration,
                )
            )
            scored.append((predicted, len(verdicts) - 1, comp))
        else:
            _count_probe("exact")
            measured_rate, max_err = _measure_fixed_rate(
                comp, views, eb_avg, sample_partitions, seed
            )
            violation = max_err / eb_avg
            if violation > 1.0:
                verdicts.append(
                    CandidateVerdict(
                        spec=spec,
                        eligible=False,
                        reason=(
                            f"rejected: fixed-rate codec cannot enforce "
                            f"eb={eb_avg:.4g}; measured max|err|={max_err:.4g} "
                            f"({violation:.1f}x the bound)"
                        ),
                        measured_bit_rate=measured_rate,
                        max_abs_error=max_err,
                        eb_violation=violation,
                    )
                )
            elif require_error_bounded:
                verdicts.append(
                    CandidateVerdict(
                        spec=spec,
                        eligible=False,
                        reason=(
                            f"rejected: within bound on the sample "
                            f"(max|err|={max_err:.4g} <= eb={eb_avg:.4g}) but "
                            "fixed-rate codecs carry no error-bound guarantee, "
                            "which the adaptive pipeline requires"
                        ),
                        measured_bit_rate=measured_rate,
                        max_abs_error=max_err,
                        eb_violation=violation,
                    )
                )
            else:
                verdicts.append(
                    CandidateVerdict(
                        spec=spec,
                        eligible=True,
                        reason=(
                            f"fixed-rate but within bound on the sample: "
                            f"max|err|={max_err:.4g} <= eb={eb_avg:.4g} "
                            f"(measured {measured_rate:.3f} bits/value; "
                            "no error-bound *guarantee*)"
                        ),
                        predicted_bit_rate=measured_rate,
                        measured_bit_rate=measured_rate,
                        max_abs_error=max_err,
                        eb_violation=violation,
                    )
                )
                scored.append((measured_rate, len(verdicts) - 1, comp))

    if not scored:
        lines = "; ".join(f"{v.spec}: {v.reason}" for v in verdicts)
        raise ValueError(
            f"no candidate compressor can honour the quality targets for "
            f"field {field!r} (eb_avg={eb_avg:.4g}): {lines}"
        )
    _, best_idx, best_comp = min(scored, key=lambda t: (t[0], t[1]))
    return SelectionResult(
        field=field,
        eb_avg=eb_avg,
        chosen=verdicts[best_idx].spec,
        compressor=best_comp,
        verdicts=verdicts,
    )
