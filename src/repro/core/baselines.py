"""Baselines the paper compares against (§4).

- :class:`StaticBaseline` — the "traditional method": one error bound
  for the whole dataset, every partition compressed identically.
- :class:`TrialAndErrorSearch` — the Foresight-style broad-spectrum
  search: try bounds from a grid, run the *actual* post-hoc analysis on
  the decompressed data, keep the largest bound that passes.  This is
  the expensive empirical procedure (§4.3: compression + decompression
  + analysis per trial) the models make unnecessary.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.foresight.quality import QualityCriteria

from repro.compression.api import (
    Compressor,
    CompressorSpec,
    capabilities_of,
    decompress_any,
    resolve_compressor,
)
from repro.compression.stats import CompressionStats
from repro.compression.sz import CompressedBlock
from repro.parallel.decomposition import BlockDecomposition
from repro.util.timer import TimingBreakdown

__all__ = ["StaticBaseline", "StaticResult", "TrialAndErrorSearch", "TrialRecord"]


@dataclass
class StaticResult:
    """Outcome of compressing every partition at one bound."""

    eb: float
    blocks: list[CompressedBlock]
    timings: TimingBreakdown

    @property
    def stats(self) -> CompressionStats:
        return CompressionStats.from_blocks(self.blocks)

    @property
    def overall_ratio(self) -> float:
        return self.stats.overall_ratio

    @property
    def overall_bit_rate(self) -> float:
        return self.stats.overall_bit_rate

    def reconstruct(self, decomposition: BlockDecomposition, dtype=np.float64) -> np.ndarray:
        return decomposition.assemble(
            [decompress_any(b) for b in self.blocks], dtype=dtype
        )


class StaticBaseline:
    """Traditional static configuration: one bound for every partition.

    Accepts any registry-resolvable compressor (instance, spec, spec
    string or ``None`` for the SZ default).  Fixed-rate families are
    permitted here — the baseline just calls ``compress(view, eb)`` and
    such codecs ignore the bound — which is exactly how
    :func:`~repro.core.selection.select_compressor` measures their
    error-bound violation.
    """

    def __init__(
        self, compressor: "Compressor | CompressorSpec | str | None" = None
    ) -> None:
        self.compressor = resolve_compressor(compressor)

    def run(
        self, data: np.ndarray, decomposition: BlockDecomposition, eb: float
    ) -> StaticResult:
        if eb <= 0:
            raise ValueError(f"error bound must be positive, got {eb}")
        timings = TimingBreakdown()
        blocks = []
        with timings.phase("compress"):
            for view in decomposition.partition_views(data):
                blocks.append(self.compressor.compress(view, eb))
        return StaticResult(eb=float(eb), blocks=blocks, timings=timings)


@dataclass
class TrialRecord:
    """One trial of the empirical search."""

    eb: float
    passed: bool
    ratio: float
    quality_metric: float


class TrialAndErrorSearch:
    """Foresight-style empirical bound selection.

    Parameters
    ----------
    quality_check:
        Callable ``(original, reconstructed) -> (passed, metric)`` — e.g.
        :func:`repro.analysis.spectrum.check_spectrum_quality` or a halo
        criterion.  Mutually exclusive with ``criteria``.
    compressor:
        Error-bounded compressor to trial.
    criteria:
        A :class:`~repro.foresight.quality.QualityCriteria` instead of a
        callable: the search then builds one reference-cached
        :class:`~repro.foresight.evaluator.QualityEvaluator` per
        :meth:`search` call, so the original field's spectrum/halo
        analyses are computed once instead of once per trial.  A trial
        passes when the full report does; the recorded metric is the
        worst spectrum deviation.
    probe_mode:
        ``"exact"`` (default) runs the full compress→decompress→analyze
        pass per trial.  ``"model"`` screens candidates with the
        closed-form ratio-quality engine (:mod:`repro.models.rq_model`)
        — one batched quantization probe per candidate, no codec, no
        decompression — and only ever *compresses* the predicted winner.
        Requires ``criteria`` (the engine predicts criteria verdicts,
        not arbitrary callables) and a compressor with the
        ``supports_estimate`` capability.
    confirm:
        Exact-confirmation policy for ``probe_mode="model"``:
        ``"always"`` (default) runs one real trial on the predicted
        winner and falls through to the next candidate if it fails —
        the result is then *verified*, with the whole grid still probed
        analytically; ``"never"`` trusts the prediction outright (the
        returned result is compressed but its quality never measured).
    """

    def __init__(
        self,
        quality_check: Callable[[np.ndarray, np.ndarray], tuple[bool, float]] | None = None,
        compressor: "Compressor | CompressorSpec | str | None" = None,
        criteria: "QualityCriteria | None" = None,
        probe_mode: str = "exact",
        confirm: str = "always",
    ) -> None:
        if (quality_check is None) == (criteria is None):
            raise ValueError("provide exactly one of quality_check or criteria")
        if probe_mode not in ("exact", "model"):
            raise ValueError(
                f"probe_mode must be 'exact' or 'model', got {probe_mode!r}"
            )
        if confirm not in ("always", "never"):
            raise ValueError(f"confirm must be 'always' or 'never', got {confirm!r}")
        if probe_mode == "model" and criteria is None:
            raise ValueError(
                'probe_mode="model" needs criteria (the ratio-quality engine '
                "predicts criteria verdicts, not arbitrary quality callables)"
            )
        self.quality_check = quality_check
        self.criteria = criteria
        self.compressor = resolve_compressor(compressor)
        self.probe_mode = probe_mode
        self.confirm = confirm
        if probe_mode == "model":
            capabilities_of(self.compressor).require(
                "supports_estimate",
                'probe_mode="model" (closed-form ratio-quality prediction)',
                who=self.compressor,
            )
        self.trials: list[TrialRecord] = []

    def search(
        self,
        data: np.ndarray,
        decomposition: BlockDecomposition,
        candidate_ebs: Sequence[float],
    ) -> StaticResult:
        """Return the static result at the largest passing candidate bound.

        Candidates are tried in descending order; every trial costs a
        full compress + decompress + analysis pass (the expense the
        paper's models eliminate).  Raises if no candidate passes.
        """
        candidates = sorted(set(float(e) for e in candidate_ebs), reverse=True)
        if not candidates:
            raise ValueError("need at least one candidate error bound")
        if any(e <= 0 for e in candidates):
            raise ValueError("candidate error bounds must be positive")
        baseline = StaticBaseline(self.compressor)
        if self.probe_mode == "model":
            return self._model_search(data, decomposition, candidates, baseline)
        evaluator = None
        if self.criteria is not None:
            from repro.foresight.evaluator import QualityEvaluator

            evaluator = QualityEvaluator(data, self.criteria)
        self.trials = []
        for eb in candidates:
            result = baseline.run(data, decomposition, eb)
            recon = result.reconstruct(decomposition)
            if evaluator is not None:
                report = evaluator.evaluate(recon)
                passed, metric = report.passed, report.spectrum_worst_deviation
            else:
                assert self.quality_check is not None
                passed, metric = self.quality_check(
                    np.asarray(data, dtype=np.float64), recon
                )
            self.trials.append(
                TrialRecord(eb=eb, passed=passed, ratio=result.overall_ratio, quality_metric=metric)
            )
            if passed:
                return result
        raise ValueError(
            "no candidate error bound satisfied the quality check; smallest "
            f"tried was {candidates[-1]}"
        )

    def _model_search(
        self,
        data: np.ndarray,
        decomposition: BlockDecomposition,
        candidates: list[float],
        baseline: StaticBaseline,
    ) -> StaticResult:
        """The predicted-quality fast path: probe the whole grid
        analytically, compress only (predicted) winners.

        Failing candidates are recorded with their *predicted* ratio and
        metric — nothing was compressed for them, which is the point.
        """
        from repro.foresight.evaluator import FieldReference, QualityEvaluator
        from repro.models.rq_model import RQModel

        ref = FieldReference(data)
        rq = RQModel(ref, self.criteria)
        views = decomposition.partition_views(data)
        evaluator: QualityEvaluator | None = None
        for eb in candidates:
            pred = rq.probe(self.compressor, views, eb)
            if not pred.passed:
                self.trials.append(
                    TrialRecord(
                        eb=eb,
                        passed=False,
                        ratio=pred.predicted_ratio,
                        quality_metric=pred.spectrum_worst_deviation,
                    )
                )
                continue
            result = baseline.run(data, decomposition, eb)
            if self.confirm == "never":
                self.trials.append(
                    TrialRecord(
                        eb=eb,
                        passed=True,
                        ratio=result.overall_ratio,
                        quality_metric=pred.spectrum_worst_deviation,
                    )
                )
                return result
            recon = result.reconstruct(decomposition)
            if evaluator is None:
                evaluator = QualityEvaluator(data, self.criteria, reference=ref)
            report = evaluator.evaluate(recon)
            self.trials.append(
                TrialRecord(
                    eb=eb,
                    passed=report.passed,
                    ratio=result.overall_ratio,
                    quality_metric=report.spectrum_worst_deviation,
                )
            )
            if report.passed:
                return result
        raise ValueError(
            "no candidate error bound satisfied the quality check; smallest "
            f"tried was {candidates[-1]}"
        )

    @property
    def n_trials(self) -> int:
        return len(self.trials)
