"""Baselines the paper compares against (§4).

- :class:`StaticBaseline` — the "traditional method": one error bound
  for the whole dataset, every partition compressed identically.
- :class:`TrialAndErrorSearch` — the Foresight-style broad-spectrum
  search: try bounds from a grid, run the *actual* post-hoc analysis on
  the decompressed data, keep the largest bound that passes.  This is
  the expensive empirical procedure (§4.3: compression + decompression
  + analysis per trial) the models make unnecessary.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.foresight.quality import QualityCriteria

from repro.compression.api import (
    Compressor,
    CompressorSpec,
    decompress_any,
    resolve_compressor,
)
from repro.compression.stats import CompressionStats
from repro.compression.sz import CompressedBlock
from repro.parallel.decomposition import BlockDecomposition
from repro.util.timer import TimingBreakdown

__all__ = ["StaticBaseline", "StaticResult", "TrialAndErrorSearch", "TrialRecord"]


@dataclass
class StaticResult:
    """Outcome of compressing every partition at one bound."""

    eb: float
    blocks: list[CompressedBlock]
    timings: TimingBreakdown

    @property
    def stats(self) -> CompressionStats:
        return CompressionStats.from_blocks(self.blocks)

    @property
    def overall_ratio(self) -> float:
        return self.stats.overall_ratio

    @property
    def overall_bit_rate(self) -> float:
        return self.stats.overall_bit_rate

    def reconstruct(self, decomposition: BlockDecomposition, dtype=np.float64) -> np.ndarray:
        return decomposition.assemble(
            [decompress_any(b) for b in self.blocks], dtype=dtype
        )


class StaticBaseline:
    """Traditional static configuration: one bound for every partition.

    Accepts any registry-resolvable compressor (instance, spec, spec
    string or ``None`` for the SZ default).  Fixed-rate families are
    permitted here — the baseline just calls ``compress(view, eb)`` and
    such codecs ignore the bound — which is exactly how
    :func:`~repro.core.selection.select_compressor` measures their
    error-bound violation.
    """

    def __init__(
        self, compressor: "Compressor | CompressorSpec | str | None" = None
    ) -> None:
        self.compressor = resolve_compressor(compressor)

    def run(
        self, data: np.ndarray, decomposition: BlockDecomposition, eb: float
    ) -> StaticResult:
        if eb <= 0:
            raise ValueError(f"error bound must be positive, got {eb}")
        timings = TimingBreakdown()
        blocks = []
        with timings.phase("compress"):
            for view in decomposition.partition_views(data):
                blocks.append(self.compressor.compress(view, eb))
        return StaticResult(eb=float(eb), blocks=blocks, timings=timings)


@dataclass
class TrialRecord:
    """One trial of the empirical search."""

    eb: float
    passed: bool
    ratio: float
    quality_metric: float


class TrialAndErrorSearch:
    """Foresight-style empirical bound selection.

    Parameters
    ----------
    quality_check:
        Callable ``(original, reconstructed) -> (passed, metric)`` — e.g.
        :func:`repro.analysis.spectrum.check_spectrum_quality` or a halo
        criterion.  Mutually exclusive with ``criteria``.
    compressor:
        Error-bounded compressor to trial.
    criteria:
        A :class:`~repro.foresight.quality.QualityCriteria` instead of a
        callable: the search then builds one reference-cached
        :class:`~repro.foresight.evaluator.QualityEvaluator` per
        :meth:`search` call, so the original field's spectrum/halo
        analyses are computed once instead of once per trial.  A trial
        passes when the full report does; the recorded metric is the
        worst spectrum deviation.
    """

    def __init__(
        self,
        quality_check: Callable[[np.ndarray, np.ndarray], tuple[bool, float]] | None = None,
        compressor: "Compressor | CompressorSpec | str | None" = None,
        criteria: "QualityCriteria | None" = None,
    ) -> None:
        if (quality_check is None) == (criteria is None):
            raise ValueError("provide exactly one of quality_check or criteria")
        self.quality_check = quality_check
        self.criteria = criteria
        self.compressor = resolve_compressor(compressor)
        self.trials: list[TrialRecord] = []

    def search(
        self,
        data: np.ndarray,
        decomposition: BlockDecomposition,
        candidate_ebs: Sequence[float],
    ) -> StaticResult:
        """Return the static result at the largest passing candidate bound.

        Candidates are tried in descending order; every trial costs a
        full compress + decompress + analysis pass (the expense the
        paper's models eliminate).  Raises if no candidate passes.
        """
        candidates = sorted(set(float(e) for e in candidate_ebs), reverse=True)
        if not candidates:
            raise ValueError("need at least one candidate error bound")
        if any(e <= 0 for e in candidates):
            raise ValueError("candidate error bounds must be positive")
        baseline = StaticBaseline(self.compressor)
        evaluator = None
        if self.criteria is not None:
            from repro.foresight.evaluator import QualityEvaluator

            evaluator = QualityEvaluator(data, self.criteria)
        self.trials = []
        for eb in candidates:
            result = baseline.run(data, decomposition, eb)
            recon = result.reconstruct(decomposition)
            if evaluator is not None:
                report = evaluator.evaluate(recon)
                passed, metric = report.passed, report.spectrum_worst_deviation
            else:
                assert self.quality_check is not None
                passed, metric = self.quality_check(
                    np.asarray(data, dtype=np.float64), recon
                )
            self.trials.append(
                TrialRecord(eb=eb, passed=passed, ratio=result.overall_ratio, quality_metric=metric)
            )
            if passed:
                return result
        raise ValueError(
            "no candidate error bound satisfied the quality check; smallest "
            f"tried was {candidates[-1]}"
        )

    @property
    def n_trials(self) -> int:
        return len(self.trials)
