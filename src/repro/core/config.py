"""Configuration dataclasses for the adaptive pipeline."""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.api import CompressorSpec

__all__ = ["QualityTargets", "OptimizerSettings", "HaloQualitySpec", "FieldSpec"]


@dataclass(frozen=True)
class QualityTargets:
    """Post-hoc analysis quality requirements (§2.1 defaults).

    Attributes
    ----------
    spectrum_tolerance:
        Admissible ``|P'(k)/P(k) - 1|`` (paper: 0.01).
    spectrum_k_max:
        Wavenumber cutoff for the spectrum test (paper: 10).
    confidence_z:
        Sigma multiplier mapping model variance to the tolerance
        (paper: 2, i.e. 95.4% confidence).
    halo_mass_rmse:
        Admissible RMSE of matched halo mass ratios (paper: 0.01).
    """

    spectrum_tolerance: float = 0.01
    spectrum_k_max: int = 10
    confidence_z: float = 2.0
    halo_mass_rmse: float = 0.01

    def __post_init__(self) -> None:
        if self.spectrum_tolerance <= 0:
            raise ValueError("spectrum_tolerance must be positive")
        if self.spectrum_k_max < 2:
            raise ValueError("spectrum_k_max must be at least 2")
        if self.confidence_z <= 0:
            raise ValueError("confidence_z must be positive")
        if self.halo_mass_rmse <= 0:
            raise ValueError("halo_mass_rmse must be positive")


@dataclass(frozen=True)
class OptimizerSettings:
    """Knobs of the per-partition optimizer (§3.6 defaults).

    Attributes
    ----------
    clamp_factor:
        Bounds are clamped to ``[eb_avg/clamp, clamp*eb_avg]``
        (paper: 4) to contain partitions the models fit poorly.
    normalization:
        ``"exact"`` — allgather the per-partition features and solve the
        constrained optimum exactly (default); ``"local"`` — the paper's
        cheaper protocol needing only one allreduce: every rank applies
        the closed form against the coefficient of the *global mean*
        feature (the constraint then holds approximately).
    constraint_mode:
        How per-partition bounds combine in the FFT error model:
        ``"paper"`` (Eq. 10, linear average) or ``"rms"`` (exact).
    """

    clamp_factor: float = 4.0
    normalization: str = "exact"
    constraint_mode: str = "paper"

    def __post_init__(self) -> None:
        if self.clamp_factor < 1:
            raise ValueError("clamp_factor must be >= 1")
        if self.normalization not in ("exact", "local"):
            raise ValueError("normalization must be 'exact' or 'local'")
        if self.constraint_mode not in ("paper", "rms"):
            raise ValueError("constraint_mode must be 'paper' or 'rms'")


@dataclass(frozen=True)
class HaloQualitySpec:
    """Halo-finder constraint inputs for a density field (§3.4/§3.6).

    Attributes
    ----------
    t_boundary:
        Candidate-cell threshold of the downstream halo finder.
    mass_budget:
        Admissible total absolute halo-mass change (Eq. 11 budget).
    reference_eb:
        Error bound at which boundary cells are counted once; counts
        extrapolate linearly (§4.2).
    """

    t_boundary: float
    mass_budget: float
    reference_eb: float = 1.0

    def __post_init__(self) -> None:
        if self.t_boundary <= 0:
            raise ValueError("t_boundary must be positive")
        if self.mass_budget <= 0:
            raise ValueError("mass_budget must be positive")
        if self.reference_eb <= 0:
            raise ValueError("reference_eb must be positive")


@dataclass(frozen=True)
class FieldSpec:
    """Quality/configuration policy for one field.

    Shared by the batch campaign (:mod:`repro.core.campaign`) and the
    streaming controller (:mod:`repro.stream.controller`).

    Attributes
    ----------
    spectrum_tolerance / spectrum_k_max / confidence_z:
        P(k) acceptance band driving the model-derived budget.
    correlated_fraction:
        §3.5-revision knob for the budget inversion (0 = paper's model).
    halo_aware:
        Apply the combined §3.6 optimization (density fields).
    halo_percentile:
        Percentile of the field defining ``t_boundary``.
    halo_mass_fraction:
        Mass budget as a fraction of the total halo mass (Eq. 11).
    eb_override:
        Skip the model inversion and use this average bound directly.
    compressor:
        Pin this field to one compressor configuration (a
        :class:`~repro.compression.api.CompressorSpec` or spec string
        such as ``"sz:codec=huffman"``).  ``None`` (default) inherits
        the campaign/controller-level compressor, or — when a candidate
        slate is configured — whatever
        :func:`~repro.core.selection.select_compressor` picks for the
        field.
    """

    spectrum_tolerance: float = 0.01
    spectrum_k_max: int = 10
    confidence_z: float = 2.0
    correlated_fraction: float = 0.0
    halo_aware: bool = False
    halo_percentile: float = 99.5
    halo_mass_fraction: float = 0.01
    eb_override: float | None = None
    compressor: CompressorSpec | str | None = None

    def __post_init__(self) -> None:
        if self.spectrum_tolerance <= 0:
            raise ValueError("spectrum_tolerance must be positive")
        if not 0 <= self.correlated_fraction <= 1:
            raise ValueError("correlated_fraction must be in [0, 1]")
        if not 50 <= self.halo_percentile < 100:
            raise ValueError("halo_percentile must be in [50, 100)")
        if self.eb_override is not None and self.eb_override <= 0:
            raise ValueError("eb_override must be positive")
        if isinstance(self.compressor, str):
            object.__setattr__(
                self, "compressor", CompressorSpec.parse(self.compressor)
            )
