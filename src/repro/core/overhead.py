"""Overhead accounting for the §4.3 performance claims.

The paper reports: computing per-partition means costs ~1-1.5% of
compression time on CPUs; counting effective (boundary) cells for the
density field adds up to 5%; the one collective is negligible.  This
module measures those same ratios on the local machine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.api import Compressor, CompressorSpec, resolve_compressor
from repro.core.features import extract_features
from repro.parallel.decomposition import BlockDecomposition
from repro.util.timer import Timer

__all__ = ["OverheadReport", "measure_overhead"]


@dataclass
class OverheadReport:
    """Wall-clock phase totals (seconds) and the derived ratios."""

    feature_time: float
    boundary_time: float
    optimize_time: float
    compress_time: float

    @property
    def feature_overhead(self) -> float:
        """Mean-extraction time as a fraction of compression time."""
        return self.feature_time / self.compress_time

    @property
    def boundary_overhead(self) -> float:
        """Boundary-cell counting time as a fraction of compression time."""
        return self.boundary_time / self.compress_time

    @property
    def total_overhead(self) -> float:
        return (
            self.feature_time + self.boundary_time + self.optimize_time
        ) / self.compress_time


def measure_overhead(
    data: np.ndarray,
    decomposition: BlockDecomposition,
    eb: float,
    compressor: "Compressor | CompressorSpec | str | None" = None,
    t_boundary: float | None = None,
    repeats: int = 3,
) -> OverheadReport:
    """Measure feature-extraction overhead relative to compression.

    Phases are timed separately over ``repeats`` passes (minimum taken,
    standard practice for wall-clock micro-measurements).  ``compressor``
    is registry-resolvable (instance, spec, spec string or ``None`` for
    the SZ default), so the §4.3 ratios can be measured per family.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    comp = resolve_compressor(compressor)
    views = decomposition.partition_views(data)

    def _time(fn) -> float:
        best = float("inf")
        timer = Timer()
        for _ in range(repeats):
            with timer:
                fn()
            best = min(best, timer.elapsed)
        return best

    feature_time = _time(
        lambda: [extract_features(v, rank=i) for i, v in enumerate(views)]
    )
    if t_boundary is not None:
        both = _time(
            lambda: [
                extract_features(v, rank=i, t_boundary=t_boundary)
                for i, v in enumerate(views)
            ]
        )
        boundary_time = max(both - feature_time, 0.0)
    else:
        boundary_time = 0.0

    # The optimization itself: closed-form evaluation over M scalars.
    feats = [extract_features(v, rank=i) for i, v in enumerate(views)]
    from repro.core.optimizer import optimize_for_spectrum
    from repro.models.rate_model import RateModel

    model = RateModel(exponent=-0.8, coef_alpha=0.0, coef_beta=0.2)
    optimize_time = _time(lambda: optimize_for_spectrum(feats, model, eb))

    compress_time = _time(lambda: [comp.compress(v, eb) for v in views])
    return OverheadReport(
        feature_time=feature_time,
        boundary_time=boundary_time,
        optimize_time=optimize_time,
        compress_time=compress_time,
    )
