"""Retry with deterministic backoff and typed error classification.

A :class:`RetryPolicy` answers three questions, each deterministically:

- *Should this failure be retried?*  Only exceptions matching the
  policy's ``retryable`` types (by default the :class:`TransientError`
  marker, timeouts, OS-level errors, and a broken process pool).
  Everything else — a ``ValueError`` from bad inputs, a genuine bug —
  propagates immediately; retrying it would only mask the defect.
- *How long to wait?*  Exponential backoff with *seeded* jitter: the
  delay before retry ``k`` at call site ``s`` is a pure function of
  ``(policy.seed, s, k)``, drawn through :func:`repro.util.rng.
  default_rng` — two runs of the same chaos test back off identically.
- *When to give up?*  After ``max_attempts`` total attempts the policy
  raises :class:`RetryExhaustedError` (chaining the last failure) so
  callers can switch to a degradation path instead of looping forever.

The sleep itself is injectable (``sleep=``) so tests never block on
wall-clock time; the default is :func:`time.sleep`, which is allowed
*only here* — lint rule RL010 flags sleeps and hand-rolled retry loops
outside :mod:`repro.resilience`.
"""

from __future__ import annotations

import time
import zlib
from collections.abc import Callable
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, TypeVar

from repro import telemetry
from repro.util.rng import default_rng

__all__ = ["TransientError", "RetryExhaustedError", "RetryPolicy"]

T = TypeVar("T")


class TransientError(Exception):
    """Marker base for failures that are expected to succeed on retry.

    Raise (or subclass) it for conditions outside the program's control:
    a worker killed by the OOM killer, a snapshot file mid-copy, a
    filesystem hiccup.  The injected-fault types in
    :mod:`repro.resilience.faults` subclass it so chaos tests exercise
    the same classification path production failures take.
    """


class RetryExhaustedError(Exception):
    """A retryable operation failed on every attempt of its budget.

    Attributes
    ----------
    site:
        The call-site label the retries were accounted against.
    attempts:
        Total attempts made (initial call included).
    last:
        The final attempt's exception (also chained as ``__cause__``).
    """

    def __init__(self, site: str, attempts: int, last: BaseException) -> None:
        super().__init__(
            f"{site}: all {attempts} attempt(s) failed; "
            f"last error: {type(last).__name__}: {last}"
        )
        self.site = site
        self.attempts = attempts
        self.last = last


#: Exception types retried when a policy does not override ``retryable``.
#: ``BrokenProcessPool`` is how a crashed worker surfaces in the parent;
#: ``TimeoutError``/``OSError`` cover stalled collectives and transient
#: filesystem failures (``ConnectionError`` is an ``OSError`` subclass).
DEFAULT_RETRYABLE: tuple[type[BaseException], ...] = (
    TransientError,
    BrokenProcessPool,
    TimeoutError,
    OSError,
)


def _site_seed(seed: int, site: str) -> int:
    """Stable per-site jitter seed (crc32, not the salted ``hash()``)."""
    return (int(seed) & 0xFFFFFFFF) ^ zlib.crc32(site.encode("utf-8"))


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic exponential-backoff retry budget for one concern.

    Parameters
    ----------
    max_attempts:
        Total attempts (initial call included); ``1`` disables retrying
        while keeping the typed :class:`RetryExhaustedError` surface.
    base_delay / backoff / max_delay:
        Retry ``k`` (0-based) waits ``min(max_delay, base_delay *
        backoff**k)`` seconds before the jitter factor.
    jitter:
        Fractional jitter amplitude: each delay is scaled by a factor
        drawn uniformly from ``[1, 1 + jitter]``, seeded per call site —
        deterministic, yet de-synchronizing concurrent retriers.
    seed:
        Root seed of the jitter stream (combined with the site label).
    retryable:
        Exception types worth retrying; defaults to
        :data:`DEFAULT_RETRYABLE`.

    Examples
    --------
    >>> policy = RetryPolicy(max_attempts=3, base_delay=0.0)
    >>> calls = []
    >>> def flaky():
    ...     calls.append(1)
    ...     if len(calls) < 2:
    ...         raise TransientError("not yet")
    ...     return "ok"
    >>> policy.execute(flaky, site="doctest")
    'ok'
    >>> len(calls)
    2
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    backoff: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25
    seed: int = 0
    retryable: tuple[type[BaseException], ...] = DEFAULT_RETRYABLE

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.backoff < 1:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {self.max_delay}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    # -- classification --------------------------------------------------

    def is_retryable(self, exc: BaseException) -> bool:
        """Whether ``exc`` is a transient failure under this policy."""
        return isinstance(exc, self.retryable)

    # -- deterministic schedule ------------------------------------------

    def delays(self, site: str) -> list[float]:
        """The full backoff schedule for ``site``: one delay per retry.

        A pure function of ``(seed, site)``: element ``k`` is the wait
        before retry ``k`` (so the list has ``max_attempts - 1``
        entries).  Exposed for tests and for documentation of the
        contract; :meth:`execute` consumes exactly this schedule.
        """
        rng = default_rng(_site_seed(self.seed, site))
        out = []
        for k in range(self.max_attempts - 1):
            raw = min(self.max_delay, self.base_delay * self.backoff**k)
            out.append(raw * (1.0 + self.jitter * float(rng.random())))
        return out

    # -- the loop --------------------------------------------------------

    def execute(
        self,
        fn: Callable[[], T],
        *,
        site: str,
        sleep: Callable[[float], Any] | None = None,
        on_retry: Callable[[str, int, BaseException, float], Any] | None = None,
    ) -> T:
        """Run ``fn`` under this policy's budget for call site ``site``.

        ``on_retry(site, attempt, exc, delay)`` is invoked before each
        backoff wait (``attempt`` is the 1-based attempt that just
        failed) — the hook the stream controller uses to account
        retries in its report.  ``sleep`` replaces :func:`time.sleep`
        (tests pass a recorder so nothing blocks).

        Raises
        ------
        RetryExhaustedError
            When every attempt failed with a retryable error; the last
            failure is chained as ``__cause__``.
        """
        wait = time.sleep if sleep is None else sleep
        schedule = self.delays(site)
        last: BaseException | None = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except BaseException as exc:
                if not self.is_retryable(exc):
                    raise
                last = exc
                if attempt == self.max_attempts:
                    break
                delay = schedule[attempt - 1]
                if telemetry.enabled():
                    telemetry.get_registry().counter(f"resilience.retries.{site}").inc()
                if on_retry is not None:
                    on_retry(site, attempt, exc, delay)
                if delay > 0:
                    wait(delay)
        assert last is not None
        raise RetryExhaustedError(site, self.max_attempts, last) from last
