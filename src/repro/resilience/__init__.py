"""repro.resilience — deterministic fault tolerance for the stream path.

The in-situ pipeline runs *inside* a long-lived simulation: a crashed
compressor worker, a flaky snapshot load, or a torn ledger write must
not take the run down or silently corrupt provenance.  This package is
the substrate the execution and stream layers build on:

- :mod:`repro.resilience.faults` — seeded, exactly-reproducible fault
  injection.  Production code declares named *fault points*
  (``fault_point("backend.compress")``); a :class:`FaultPlan` arms them
  to raise crashes, timeouts, corrupted-payload errors, or torn ledger
  writes on chosen invocations.  Chaos tests replay bit-for-bit because
  every firing schedule is a pure function of the plan's seed and
  arming calls — never of global RNG state.
- :mod:`repro.resilience.retry` — :class:`RetryPolicy`: exponential
  backoff with *seeded* jitter (deterministic per call site), per-site
  attempt budgets, and typed retryable-error classification
  (:class:`TransientError` and friends retry; everything else
  propagates immediately).  Exhausted budgets raise
  :class:`RetryExhaustedError` so callers can degrade gracefully.

Everything else — the crash-safe ledger (:mod:`repro.stream.ledger`),
pool rebuilds in :class:`~repro.parallel.backends.ProcessBackend`,
:meth:`~repro.stream.controller.InSituController.resume`, and the
fallback-compressor degradation path — consumes these two primitives.

This package is also the *only* place `time.sleep` and retry loops are
allowed to live (lint rule RL010 flags hand-rolled retries elsewhere).
"""

from repro.resilience.faults import (
    CorruptedPayloadError,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InjectedFault,
    InjectedTimeout,
    TornWrite,
    active_plan,
    fault_point,
)
from repro.resilience.retry import (
    RetryExhaustedError,
    RetryPolicy,
    TransientError,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "InjectedCrash",
    "InjectedTimeout",
    "CorruptedPayloadError",
    "TornWrite",
    "fault_point",
    "active_plan",
    "RetryPolicy",
    "RetryExhaustedError",
    "TransientError",
]
