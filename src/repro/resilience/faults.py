"""Deterministic fault injection: seeded chaos the tests can replay.

Production code declares *fault points* — named places where the real
world can fail::

    fault_point("backend.compress")   # before compressing a batch
    fault_point("ledger.append")      # before writing a ledger line
    fault_point("source.load")        # before loading a snapshot

A disarmed fault point is one module-global read (no plan installed →
return immediately), so the hooks stay in production builds.  A chaos
test arms a :class:`FaultPlan`::

    plan = FaultPlan(seed=7)
    plan.arm("backend.compress", kind="crash", at=0)   # first invocation
    with plan.activate():
        controller.run(stream)                          # fault fires

Everything about the firing schedule is a pure function of the plan's
seed and arming calls — :meth:`FaultPlan.arm_random` draws invocation
indices through :func:`repro.util.rng.default_rng`, never the global
RNG — so a failing chaos run reproduces exactly from its seed.

Fault kinds map to the failure modes the stream path must survive:

===========  ==============================================================
``crash``    raise :class:`InjectedCrash` (a retryable transient failure —
             the worker died, the batch can be re-run)
``timeout``  raise :class:`InjectedTimeout` (``TimeoutError`` subclass)
``corrupt``  raise :class:`CorruptedPayloadError` (payload failed
             verification; re-reading / re-compressing may fix it)
``torn``     raise :class:`TornWrite` — the ledger's append path catches
             it, writes a *partial* line, and re-raises: the on-disk
             state a power cut mid-``write`` leaves behind
``exit``     ``os._exit(exit_code)`` — genuinely kill the process; inside
             a pool worker this surfaces as ``BrokenProcessPool`` in the
             parent, the real thing pool-rebuild logic must handle
===========  ==============================================================

Counting is per-process: a forked pool worker inherits the active plan
and counts its own invocations.  Multi-worker counters are therefore
only deterministic per worker — chaos tests that need an exact global
schedule use ``max_workers=1`` or the serial/thread backends (one
process, invocation counters guarded by a lock).
"""

from __future__ import annotations

import os
import threading
from collections.abc import Iterable
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.resilience.retry import TransientError
from repro.util.rng import default_rng

__all__ = [
    "InjectedFault",
    "InjectedCrash",
    "InjectedTimeout",
    "CorruptedPayloadError",
    "TornWrite",
    "FaultSpec",
    "FaultPlan",
    "fault_point",
    "active_plan",
]


class InjectedFault(Exception):
    """Base of every exception the fault machinery raises on purpose."""


class InjectedCrash(InjectedFault, TransientError):
    """An armed ``crash`` fault: the operation died mid-flight.

    Subclasses :class:`~repro.resilience.retry.TransientError`, so the
    default :class:`~repro.resilience.retry.RetryPolicy` classification
    retries it — the point of injecting it is to exercise that path.
    """


class InjectedTimeout(InjectedFault, TimeoutError):
    """An armed ``timeout`` fault: the operation never came back."""


class CorruptedPayloadError(InjectedFault, TransientError):
    """An armed ``corrupt`` fault: the produced bytes failed verification."""


class TornWrite(InjectedFault):
    """An armed ``torn`` fault: a write was cut mid-line.

    Deliberately *not* transient: retrying a torn append would duplicate
    the event; the correct response is crash-safe recovery
    (:meth:`repro.stream.ledger.RunLedger` with ``recover=True``).

    ``fraction`` is how much of the line lands on disk before the cut.
    """

    def __init__(self, site: str, fraction: float = 0.5) -> None:
        super().__init__(f"torn write injected at {site!r} (fraction={fraction})")
        self.fraction = float(fraction)


_KINDS = ("crash", "timeout", "corrupt", "torn", "exit")


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: where, what, and on which invocations."""

    site: str
    kind: str
    at: frozenset[int]
    fraction: float = 0.5  # torn writes: how much of the line survives
    exit_code: int = 82  # exit faults: the worker's _exit status

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected {_KINDS}")
        if not self.at:
            raise ValueError(f"fault at {self.site!r} armed with no invocations")
        if any(i < 0 for i in self.at):
            raise ValueError("invocation indices must be >= 0")
        if not 0.0 <= self.fraction < 1.0:
            raise ValueError(f"fraction must be in [0, 1), got {self.fraction}")


@dataclass
class FaultPlan:
    """A seeded, exactly-reproducible schedule of armed faults.

    One plan instance is armed by tests, activated around the code under
    test, and consulted by every :func:`fault_point` it encloses.  All
    mutation is lock-guarded so thread-backend chaos runs count
    invocations consistently.
    """

    seed: int = 0
    _specs: dict[str, FaultSpec] = field(default_factory=dict)
    _counts: dict[str, int] = field(default_factory=dict)
    _fired: dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    # -- arming ----------------------------------------------------------

    def arm(
        self,
        site: str,
        kind: str = "crash",
        at: int | Iterable[int] = 0,
        *,
        fraction: float = 0.5,
        exit_code: int = 82,
    ) -> "FaultPlan":
        """Arm ``site`` to fail on the given 0-based invocation(s)."""
        invocations = frozenset([at] if isinstance(at, int) else at)
        self._specs[site] = FaultSpec(
            site=site, kind=kind, at=invocations, fraction=fraction,
            exit_code=exit_code,
        )
        return self

    def arm_random(
        self,
        site: str,
        kind: str = "crash",
        *,
        rate: float,
        horizon: int,
        fraction: float = 0.5,
    ) -> "FaultPlan":
        """Arm ``site`` on a seeded random subset of the next ``horizon``
        invocations (each selected with probability ``rate``).

        The subset is a pure function of ``(self.seed, site, rate,
        horizon)`` via :func:`repro.util.rng.default_rng` — rerunning the
        same plan fires the same invocations.
        """
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"rate must be in (0, 1], got {rate}")
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        import zlib

        rng = default_rng(
            (int(self.seed) & 0xFFFFFFFF) ^ zlib.crc32(site.encode("utf-8"))
        )
        draws = rng.random(horizon)
        chosen = frozenset(int(i) for i in range(horizon) if draws[i] < rate)
        if not chosen:
            # Deterministic fallback: an armed-but-never-firing plan is a
            # test that silently checks nothing.
            chosen = frozenset({int(rng.integers(horizon))})
        self._specs[site] = FaultSpec(site=site, kind=kind, at=chosen, fraction=fraction)
        return self

    def disarm(self, site: str) -> "FaultPlan":
        """Remove ``site``'s armed fault (invocation counts are kept).

        Useful for one-shot process-kill faults: a rebuilt (re-forked)
        pool worker inherits the parent's plan *as of the fork*, so a
        parent that disarms after the first kill — e.g. from a backend
        ``on_retry`` hook — guarantees the replacement workers survive.
        """
        self._specs.pop(site, None)
        return self

    # -- introspection ---------------------------------------------------

    def invocations(self, site: str) -> int:
        """How many times ``site`` has been reached under this plan."""
        with self._lock:
            return self._counts.get(site, 0)

    def fired(self, site: str) -> int:
        """How many times ``site`` actually raised under this plan."""
        with self._lock:
            return self._fired.get(site, 0)

    def armed_at(self, site: str) -> frozenset[int]:
        spec = self._specs.get(site)
        return frozenset() if spec is None else spec.at

    # -- firing ----------------------------------------------------------

    def fire(self, site: str) -> None:
        """Count one invocation of ``site``; raise if it is armed for it."""
        spec = self._specs.get(site)
        with self._lock:
            invocation = self._counts.get(site, 0)
            self._counts[site] = invocation + 1
            hit = spec is not None and invocation in spec.at
            if hit:
                self._fired[site] = self._fired.get(site, 0) + 1
        if not hit:
            return
        assert spec is not None
        if spec.kind == "crash":
            raise InjectedCrash(f"injected crash at {site!r} (invocation {invocation})")
        if spec.kind == "timeout":
            raise InjectedTimeout(
                f"injected timeout at {site!r} (invocation {invocation})"
            )
        if spec.kind == "corrupt":
            raise CorruptedPayloadError(
                f"injected corrupted payload at {site!r} (invocation {invocation})"
            )
        if spec.kind == "torn":
            raise TornWrite(site, fraction=spec.fraction)
        # kind == "exit": genuinely kill the process (pool-worker chaos).
        os._exit(spec.exit_code)

    # -- activation ------------------------------------------------------

    def install(self) -> None:
        """Make this plan the process-wide active plan."""
        global _ACTIVE
        _ACTIVE = self

    def deactivate(self) -> None:
        global _ACTIVE
        if _ACTIVE is self:
            _ACTIVE = None

    @contextmanager
    def activate(self):
        """Install the plan for the duration of a ``with`` block."""
        self.install()
        try:
            yield self
        finally:
            self.deactivate()


#: The process-wide active plan (``None`` = every fault point disarmed).
#: Forked pool workers inherit the binding at fork time; spawned workers
#: start disarmed.
_ACTIVE: FaultPlan | None = None


def active_plan() -> FaultPlan | None:
    """The currently installed :class:`FaultPlan`, if any."""
    return _ACTIVE


def fault_point(site: str) -> None:
    """Declare a named fault point; raises only when a plan arms it.

    The disarmed cost is one global read and a ``None`` check —
    production call sites keep the hook unconditionally.
    """
    plan = _ACTIVE
    if plan is not None:
        plan.fire(site)
