"""repro — adaptive in situ lossy compression for cosmology simulations.

Reproduction of Jin et al., "Adaptive Configuration of In Situ Lossy
Compression for Cosmology Simulations via Fine-Grained Rate-Quality
Modeling" (HPDC '21).

Quick start::

    from repro import (
        NyxSimulator, BlockDecomposition, SZCompressor,
        calibrate_rate_model, AdaptiveCompressionPipeline,
    )

    sim = NyxSimulator(shape=(64, 64, 64), seed=42)
    snap = sim.snapshot(z=2.0)
    dec = BlockDecomposition(snap.shape, blocks=4)

    cal = calibrate_rate_model(dec.partition_views(snap["temperature"]),
                               eb_scale=1.0)
    pipe = AdaptiveCompressionPipeline(cal.rate_model)
    result = pipe.run(snap["temperature"], dec, eb_avg=1.0)
    print(result.overall_ratio)

Subpackages: :mod:`repro.core` (adaptive configuration),
:mod:`repro.models` (rate-quality models), :mod:`repro.compression`
(SZ-style compressor), :mod:`repro.sim` (synthetic Nyx),
:mod:`repro.analysis` (power spectrum / halo finder),
:mod:`repro.parallel` (simulated MPI), :mod:`repro.foresight`
(evaluation harness), :mod:`repro.stream` (online in situ streaming
controller, run ledger, drift detection, budget governor).
"""

from repro.compression import (
    REGISTRY,
    AdaptiveSZCompressor,
    CompressorCapabilities,
    CompressorSpec,
    SZCompressor,
    UnsupportedCapabilityError,
    ZFPLikeCompressor,
    decompress,
    decompress_any,
    resolve_compressor,
)
from repro.core import (
    AdaptiveCompressionPipeline,
    SelectionResult,
    select_compressor,
    CompressionCampaign,
    FieldSpec,
    HaloQualitySpec,
    OptimizerSettings,
    QualityTargets,
    SnapshotResult,
    StaticBaseline,
    TrialAndErrorSearch,
)
from repro.models import RateModel, RateModelBank, calibrate_rate_model
from repro.parallel import (
    BlockDecomposition,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    get_backend,
    register_backend,
    run_spmd,
)
from repro.sim import NyxSimulator, NyxSnapshot
from repro.stream import (
    DirectoryStream,
    DriftConfig,
    InSituController,
    RunLedger,
    SimulatorStream,
    SnapshotSequence,
    StreamReport,
    replay_ledger,
)

__version__ = "1.0.0"

__all__ = [
    "SZCompressor",
    "REGISTRY",
    "CompressorCapabilities",
    "CompressorSpec",
    "UnsupportedCapabilityError",
    "decompress_any",
    "resolve_compressor",
    "SelectionResult",
    "select_compressor",
    "RateModelBank",
    "AdaptiveSZCompressor",
    "CompressionCampaign",
    "FieldSpec",
    "ZFPLikeCompressor",
    "decompress",
    "AdaptiveCompressionPipeline",
    "SnapshotResult",
    "StaticBaseline",
    "TrialAndErrorSearch",
    "QualityTargets",
    "OptimizerSettings",
    "HaloQualitySpec",
    "RateModel",
    "calibrate_rate_model",
    "BlockDecomposition",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "get_backend",
    "register_backend",
    "run_spmd",
    "NyxSimulator",
    "NyxSnapshot",
    "InSituController",
    "RunLedger",
    "DriftConfig",
    "SimulatorStream",
    "DirectoryStream",
    "SnapshotSequence",
    "StreamReport",
    "replay_ledger",
    "__version__",
]
