"""Online in situ streaming with a run ledger and a storage budget.

The batch campaign (``examples/insitu_campaign.py``) calibrates once and
trusts the models forever.  This example runs the *streaming* subsystem
instead — the deployment shape of a real simulation run:

1. A :class:`~repro.stream.source.SimulatorStream` plays an 8-dump
   redshift schedule (fixed phases, growing structure).
2. An :class:`~repro.stream.controller.InSituController` decides every
   field's error bounds online: warm-starting from the previous
   snapshot, re-fitting the rate model only when the drift detector sees
   the predicted-vs-achieved bitrate residuals leave the estimator's
   noise band, and steering the cumulative compressed bytes onto a
   total-run budget 15% below the natural spend.
3. Every calibration, decision, outcome and budget step lands in an
   append-only JSONL ledger; afterwards the run is *replayed from the
   ledger alone* — no field data — and the reproduced per-partition
   bounds are checked byte-for-byte against the live run.

Run:  python examples/insitu_stream.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    BlockDecomposition,
    InSituController,
    NyxSimulator,
    SimulatorStream,
    SnapshotSequence,
    replay_ledger,
)
from repro.util.tables import format_table

SHAPE = (32, 32, 32)
REDSHIFTS = [4.0, 3.0, 2.2, 1.6, 1.2, 0.8, 0.5, 0.3]
BUDGET_FRACTION = 0.85


def main() -> None:
    sim = NyxSimulator(shape=SHAPE, box_size=float(SHAPE[0]), seed=7)
    dec = BlockDecomposition(SHAPE, blocks=2)
    snapshots = [sim.snapshot(z=z) for z in REDSHIFTS]

    # Probe pass: what would the run cost with no budget pressure?
    probe = InSituController(dec, max_partitions=8)
    natural = probe.run(SnapshotSequence(snapshots)).compressed_bytes
    budget = int(BUDGET_FRACTION * natural)
    print(f"natural spend {natural} B -> governed budget {budget} B\n")

    ledger_path = Path(tempfile.mkdtemp()) / "run.jsonl"
    controller = InSituController(
        dec,
        max_partitions=8,
        byte_budget=budget,
        ledger=str(ledger_path),
    )
    report = controller.run(SimulatorStream(sim, REDSHIFTS))
    controller.close()

    rows = []
    for i, z in enumerate(REDSHIFTS):
        outs = [o for o in report.outcomes if o.snapshot_index == i]
        recal = sum(1 for s, _f, _r in report.recalibrations if s == i)
        rows.append(
            [
                z,
                outs[0].scale,
                sum(o.compressed_bytes for o in outs),
                sum(o.raw_bytes for o in outs) / sum(o.compressed_bytes for o in outs),
                recal,
            ]
        )
    print(
        format_table(
            ["redshift", "governor scale", "bytes", "ratio", "recalibrations"],
            rows,
            title=f"Streaming run ({SHAPE[0]}^3, {len(REDSHIFTS)} dumps)",
        )
    )
    print(
        f"\nbudget use {100.0 * report.budget_utilization:.1f}%  "
        f"({report.compressed_bytes} / {budget} B), "
        f"{report.n_recalibrations} drift-triggered recalibration(s)"
    )

    # Deterministic replay: the ledger alone reproduces every decision.
    decisions = replay_ledger(ledger_path)
    live = [o.result.ebs for o in report.outcomes]
    assert all(
        np.asarray(d.ebs).tobytes() == ebs.tobytes()
        for d, ebs in zip(decisions, live)
    )
    print(
        f"\nreplayed {len(decisions)} decisions from {ledger_path.name} "
        "byte-identically, without reading any field data"
    )


if __name__ == "__main__":
    main()
