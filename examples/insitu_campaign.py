"""In situ compression campaign across a simulation run.

Mirrors the paper's deployment: a cosmology simulation dumps snapshots
at decreasing redshift; at every dump each MPI rank extracts its
partition features, exchanges one scalar collective, solves for its own
error bound and compresses.  The script runs the real thread-SPMD
pipeline (one thread per rank, barrier collectives) and reports the
ratio trajectory for per-snapshot adaptive optimization vs a
configuration frozen at the first snapshot (the paper's Fig. 16 story).

Run:  python examples/insitu_campaign.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AdaptiveCompressionPipeline,
    BlockDecomposition,
    NyxSimulator,
    calibrate_rate_model,
)
from repro.core.features import extract_features
from repro.core.optimizer import optimize_for_spectrum
from repro.util.tables import format_table

REDSHIFTS = [4.0, 2.0, 1.0, 0.5, 0.2]
FIELD = "baryon_density"
EB_AVG = 0.3


def main() -> None:
    sim = NyxSimulator(shape=(64, 64, 64), box_size=64.0, seed=7)
    dec = BlockDecomposition((64, 64, 64), blocks=4)

    # Offline calibration on the first snapshot.
    first = sim.snapshot(z=REDSHIFTS[0])
    cal = calibrate_rate_model(dec.partition_views(first[FIELD]), eb_scale=EB_AVG, seed=0)
    pipe = AdaptiveCompressionPipeline(cal.rate_model)

    # A frozen configuration computed once at the first snapshot.
    feats0 = [
        extract_features(v, rank=i)
        for i, v in enumerate(dec.partition_views(first[FIELD]))
    ]
    frozen = optimize_for_spectrum(feats0, cal.rate_model, EB_AVG).ebs

    rows = []
    for z in REDSHIFTS:
        snap = sim.snapshot(z=z)
        data = snap[FIELD]
        # Real SPMD execution: one thread per rank, collectives included.
        adaptive = pipe.run_insitu_spmd(data, dec, eb_avg=EB_AVG)
        frozen_bytes = sum(
            pipe.compressor.compress(v, float(eb)).nbytes
            for v, eb in zip(dec.partition_views(data), frozen)
        )
        frozen_ratio = 4.0 * data.size / frozen_bytes
        rows.append(
            [
                z,
                snap.meta["growth_factor"],
                adaptive.stats.overall_ratio,
                frozen_ratio,
                100.0 * (adaptive.stats.overall_ratio / frozen_ratio - 1.0),
            ]
        )

    print(
        format_table(
            ["redshift", "growth D(z)", "adaptive ratio", "frozen-config ratio", "adaptive gain %"],
            rows,
            title=f"In situ campaign on {FIELD} ({dec.n_partitions} ranks, eb_avg={EB_AVG})",
        )
    )
    print(
        "\nThe frozen configuration coincides with per-snapshot optimization at"
        "\nthe snapshot it was fit on and drifts as structure forms (the paper's"
        "\nFig. 16/17 mechanism); the drift magnitude scales with how much the"
        "\npartition contrast grows between snapshots — small on this 64^3 box,"
        "\nlarge on production 512^3 runs (see EXPERIMENTS.md note 1)."
    )


if __name__ == "__main__":
    main()
