"""Per-field compressor selection: the paper's §2.2 as a runtime decision.

The paper argues for SZ over ZFP in prose — fixed-rate ZFP cannot
enforce an absolute error bound, and the whole adaptive-configuration
machinery optimizes error bounds.  With the capability-typed compressor
registry that argument is *measured*: ``select_compressor`` calibrates
every candidate family against each field, rejects the fixed-rate
candidate with a quantified error-bound violation, and picks the
cheapest error-bounded configuration.

Run::

    PYTHONPATH=src python examples/compressor_selection.py
"""

from __future__ import annotations

from repro.compression.api import REGISTRY, CompressorSpec
from repro.core.config import FieldSpec
from repro.core.selection import select_compressor
from repro.models.calibration import RateModelBank
from repro.parallel.decomposition import BlockDecomposition
from repro.sim.nyx import NyxSimulator
from repro.util.tables import format_table


def main() -> None:
    print("registered compressor families:", ", ".join(REGISTRY.families()))

    # A Nyx-like snapshot at paper quality targets (P(k) within 1%).
    shape = (32, 32, 32)
    sim = NyxSimulator(shape=shape, box_size=float(shape[0]), seed=7, sigma_delta0=2.5)
    snapshot = sim.snapshot(z=1.0)
    decomposition = BlockDecomposition(shape, blocks=2)

    # The candidate slate: plain SZ, SZ with a Huffman entropy stage
    # ('codec' is an SZ *parameter*, not a family), and the fixed-rate
    # ZFP-style comparator.
    candidates = [
        CompressorSpec.sz(),
        CompressorSpec.sz(codec="huffman"),
        CompressorSpec.zfp_like(rate=8.0),
    ]

    bank = RateModelBank(max_partitions=8)  # (field, spec)-keyed fit cache
    rows = []
    for name, data in snapshot.fields.items():
        result = select_compressor(
            data,
            decomposition,
            candidates=candidates,
            field_spec=FieldSpec(),  # paper defaults: 1% spectrum band
            field=name,
            bank=bank,
        )
        chosen = result.chosen_verdict
        zfp = result.verdict_for(CompressorSpec.zfp_like(rate=8.0))
        rows.append(
            [
                name,
                f"{result.eb_avg:.4g}",
                result.chosen.family,
                f"{chosen.predicted_bit_rate:.2f}",
                f"{zfp.max_abs_error:.4g}",
                f"{zfp.eb_violation:.1f}x",
            ]
        )

    print()
    print(
        format_table(
            [
                "field",
                "admissible eb",
                "selected",
                "pred. bits/val",
                "zfp max|err|",
                "eb violation",
            ],
            rows,
            title="per-field selection at paper quality targets",
        )
    )
    print()
    print("every field selects an error-bounded SZ-family configuration;")
    print("the fixed-rate candidate is rejected with the violation quantified —")
    print("the §2.2 argument reproduced as data.")


if __name__ == "__main__":
    main()
