"""Foresight-style broad-spectrum evaluation (the paper's baseline tool).

Sweeps error bounds across all six fields, evaluating compression rate
and every post-hoc quality metric for each configuration, then prints
the acceptance table and the per-field largest passing bound — the
expensive empirical procedure the paper's models replace.

Run:  python examples/foresight_sweep.py
"""

from __future__ import annotations

import numpy as np

from repro import BlockDecomposition, NyxSimulator
from repro.foresight import QualityCriteria, records_to_table, run_sweep


def main() -> None:
    sim = NyxSimulator(shape=(48, 48, 48), box_size=48.0, seed=11)
    snap = sim.snapshot(z=0.5)
    dec = BlockDecomposition(snap.shape, blocks=3)

    fields = {name: snap[name] for name in ("baryon_density", "temperature", "velocity_x")}
    tb = float(np.percentile(snap["baryon_density"].astype(np.float64), 99.5))
    criteria = {
        "baryon_density": QualityCriteria(
            spectrum_tolerance=0.02, check_halos=True, t_boundary=tb
        ),
        "temperature": QualityCriteria(spectrum_tolerance=0.01),
        "velocity_x": QualityCriteria(spectrum_tolerance=0.01),
    }
    # Per-field grids scaled to each field's value range.
    records = []
    for name, data in fields.items():
        vrange = float(np.ptp(data.astype(np.float64)))
        ebs = [vrange * 2.0**-k for k in range(8, 14)]
        records.extend(run_sweep({name: data}, ebs, criteria, decomposition=dec))

    print(records_to_table(records, title="Foresight-style sweep (each row = one full trial)"))

    print("\nlargest passing bound per field:")
    for name in fields:
        passing = [r for r in records if r.field == name and r.passed]
        if passing:
            best = max(passing, key=lambda r: r.eb)
            print(f"  {name:16s} eb={best.eb:.4g}  ratio={best.ratio:.1f}x")
        else:
            print(f"  {name:16s} none passed in the sweep range")
    n = len(records)
    print(f"\ntotal cost: {n} x (compress + decompress + full analysis) — "
          "the paper's models replace this search with closed-form estimates.")


if __name__ == "__main__":
    main()
