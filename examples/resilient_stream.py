"""Fault-tolerant streaming: injected chaos, retries, crash + resume.

The streaming example (``examples/insitu_stream.py``) shows the happy
path. This one breaks things on purpose and shows the resilience
contract: every fault that is retried, degraded around, or recovered
from leaves the replayed ledger decisions **bitwise identical** to a
run where nothing went wrong.

1. A clean governed 6-dump run establishes the reference ledger.
2. The same stream re-runs under a seeded :class:`FaultPlan` that
   crashes compression twice mid-run; a :class:`RetryPolicy` absorbs
   both faults and the replayed decisions match the reference exactly.
3. A third run is killed by a *torn ledger write* mid-snapshot — the
   on-disk state a power cut leaves. ``InSituController.resume``
   truncates the torn tail, restores models/governor state from the
   valid prefix, re-runs only what is missing, and the final ledger
   again replays identically.
4. A last run exhausts its retry budget on one field and degrades it to
   a conservative fallback compressor instead of dying.

Run:  python examples/resilient_stream.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    BlockDecomposition,
    InSituController,
    NyxSimulator,
    SimulatorStream,
    replay_ledger,
)
from repro.resilience import FaultPlan, RetryPolicy, TornWrite
from repro.util.tables import format_table

SHAPE = (16, 16, 16)
REDSHIFTS = [4.0, 3.0, 2.2, 1.6, 1.0, 0.5]
FIELDS = ("baryon_density", "temperature")
BUDGET = 500_000
RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)


def stream(sim: NyxSimulator) -> SimulatorStream:
    return SimulatorStream(sim, REDSHIFTS, fields=FIELDS)


def main() -> None:
    sim = NyxSimulator(shape=SHAPE, box_size=float(SHAPE[0]), seed=7)
    dec = BlockDecomposition(SHAPE, blocks=2)
    workdir = Path(tempfile.mkdtemp(prefix="repro_resilient_"))
    rows = []

    # 1. Reference: nothing goes wrong. ---------------------------------
    clean_path = workdir / "clean.jsonl"
    clean = InSituController(
        dec, ledger=clean_path, byte_budget=BUDGET, retain_results=False
    )
    clean_report = clean.run(stream(sim))
    reference = replay_ledger(clean_path)
    rows.append(["clean", clean_report.n_snapshots, 0, 0, 0, "reference"])

    # 2. Transient faults, retried away. --------------------------------
    retried_path = workdir / "retried.jsonl"
    plan = FaultPlan(seed=3).arm("backend.compress", kind="crash", at=(2, 7))
    ctl = InSituController(
        dec, ledger=retried_path, byte_budget=BUDGET, retry=RETRY,
        retain_results=False,
    )
    with plan.activate():
        retried_report = ctl.run(stream(sim))
    assert replay_ledger(retried_path) == reference
    rows.append(
        ["2 injected crashes", retried_report.n_snapshots,
         retried_report.n_retries, 0, 0, "replay == reference"]
    )

    # 3. Killed mid-run by a torn ledger write, then resumed. -----------
    crash_path = workdir / "crashed.jsonl"
    ctl = InSituController(
        dec, ledger=crash_path, byte_budget=BUDGET, retain_results=False
    )
    tear = FaultPlan(seed=1).arm("ledger.append", kind="torn", at=20, fraction=0.6)
    try:
        with tear.activate():
            ctl.run(stream(sim))
    except TornWrite:
        ctl.ledger.close()  # the "process" died mid-append

    resumed = InSituController.resume(crash_path, retain_results=False)
    done_before = resumed.report.n_snapshots
    resumed_report = resumed.run(stream(sim))
    assert replay_ledger(crash_path) == reference
    rows.append(
        [f"torn write, resumed at dump {done_before}",
         resumed_report.n_snapshots, resumed_report.n_retries,
         resumed_report.n_recoveries, 0, "replay == reference"]
    )

    # 4. Retries exhausted: degrade one field, keep streaming. ----------
    degraded_path = workdir / "degraded.jsonl"
    storm = FaultPlan(seed=2).arm("backend.compress", kind="crash", at=(0, 1))
    ctl = InSituController(
        dec, ledger=degraded_path, byte_budget=BUDGET,
        retry=RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0),
        fallback_compressor="sz:codec=zlib", retain_results=False,
    )
    with storm.activate():
        degraded_report = ctl.run(stream(sim))
    assert degraded_report.degraded_fields
    assert len(replay_ledger(degraded_path)) == len(reference)
    rows.append(
        ["retry budget exhausted", degraded_report.n_snapshots,
         degraded_report.n_retries, 0, degraded_report.n_degradations,
         f"degraded: {', '.join(degraded_report.degraded_fields)}"]
    )

    print(
        format_table(
            ["scenario", "dumps", "retries", "recoveries", "degradations",
             "outcome"],
            rows,
            title=f"resilient streaming over {len(REDSHIFTS)} dumps "
            f"({len(reference)} reference decisions)",
        )
    )
    print(f"\nledgers kept in {workdir}")


if __name__ == "__main__":
    main()
