"""Model-mode selection: the ratio-quality engine as a runtime decision.

Exact selection calibrates and quality-gates every candidate by
compressing sample partitions; model mode answers the same questions
from one batched quantization probe per bound (``docs/rq-model.md``).
This demo runs both on a Nyx-like snapshot and shows that the verdicts
agree while the compressor is invoked an order of magnitude less, then
prints the per-field predicted-vs-measured PSNR/ratio deltas behind
that trust.

Run::

    PYTHONPATH=src python examples/rq_selection.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import error_summary
from repro.compression.sz import SZCompressor
from repro.compression.zfp_like import ZFPLikeCompressor
from repro.core.config import FieldSpec
from repro.core.selection import select_compressor
from repro.parallel.decomposition import BlockDecomposition
from repro.sim.nyx import NyxSimulator
from repro.util.tables import format_table


class CallCounter:
    """Count ``compress`` invocations across the candidate families."""

    def __init__(self) -> None:
        self.calls = 0
        self._originals = [
            (cls, cls.compress) for cls in (SZCompressor, ZFPLikeCompressor)
        ]

    def __enter__(self) -> "CallCounter":
        for cls, original in self._originals:

            def counted(comp, *args, _original=original, **kwargs):
                self.calls += 1
                return _original(comp, *args, **kwargs)

            cls.compress = counted
        return self

    def __exit__(self, *exc) -> None:
        for cls, original in self._originals:
            cls.compress = original


def main() -> None:
    shape = (32, 32, 32)
    sim = NyxSimulator(shape=shape, box_size=float(shape[0]), seed=7, sigma_delta0=2.5)
    snapshot = sim.snapshot(z=1.0)
    decomposition = BlockDecomposition(shape, blocks=2)

    # -- selection: exact vs model, same spec, count the codec ------------
    def select_all(mode: str):
        results = {}
        for name, data in snapshot.fields.items():
            results[name] = select_compressor(
                data,
                decomposition,
                field_spec=FieldSpec(spectrum_tolerance=0.02),
                field=name,
                probe_mode=mode,
            )
        return results

    with CallCounter() as exact_counter:
        exact = select_all("exact")
    with CallCounter() as model_counter:
        model = select_all("model")

    rows = [
        [
            name,
            f"{exact[name].eb_avg:.4g}",
            exact[name].chosen.family,
            model[name].chosen.family,
            "yes" if str(model[name].chosen) == str(exact[name].chosen) else "NO",
        ]
        for name in snapshot.fields
    ]
    print(
        format_table(
            ["field", "admissible eb", "exact pick", "model pick", "agree"],
            rows,
            title="selection parity: exact vs probe_mode='model'",
        )
    )
    reduction = exact_counter.calls / max(model_counter.calls, 1)
    print(
        f"\ncompressor invocations: {exact_counter.calls} exact -> "
        f"{model_counter.calls} model ({reduction:.0f}x fewer)"
    )

    # -- the trust behind it: predicted vs measured, one field ------------
    comp = SZCompressor()
    rows = []
    for name, data in snapshot.fields.items():
        eb = max(float(np.ptp(data)) * 3e-3, 1e-12)
        est = comp.estimate(data, eb)  # one quantize pass, no codec
        block = comp.compress(data, eb)
        measured = error_summary(data, comp.decompress(block))
        rows.append(
            [
                name,
                f"{est.predicted_psnr_db:.2f}",
                f"{measured.psnr_db:.2f}",
                f"{est.ratio:.2f}",
                f"{block.ratio:.2f}",
            ]
        )
    print()
    print(
        format_table(
            ["field", "pred PSNR", "meas PSNR", "pred ratio", "meas ratio"],
            rows,
            title="probe accuracy (RQEstimate vs real compress/decompress)",
        )
    )
    print()
    print("same picks, several-fold fewer codec runs (>= 10x on the")
    print("benchmark's 64^3 slate) — the ratio-quality model turns")
    print("trial-and-error into arithmetic.")


if __name__ == "__main__":
    main()
