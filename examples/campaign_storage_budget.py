"""Storage budgeting for a multi-snapshot campaign (the paper's §1 math).

The paper motivates compression with campaign-level storage: a 4096³ run
dumps ~2.8 TB per snapshot and hundreds of snapshots.  This example runs
a miniature campaign — all six fields, several redshifts — through
:class:`repro.core.campaign.CompressionCampaign` and extrapolates the
measured ratios to the paper's production scale.

Run:  python examples/campaign_storage_budget.py
"""

from __future__ import annotations

import numpy as np

from repro import BlockDecomposition, CompressionCampaign, FieldSpec, NyxSimulator
from repro.sim.nyx import FIELD_NAMES
from repro.util.tables import format_table

REDSHIFTS = [2.0, 1.0, 0.5]


def main() -> None:
    sim = NyxSimulator(shape=(48, 48, 48), box_size=48.0, seed=21)
    dec = BlockDecomposition((48, 48, 48), blocks=3)

    specs = {
        "baryon_density": FieldSpec(
            spectrum_tolerance=0.02, correlated_fraction=0.5, halo_aware=True
        ),
        "dark_matter_density": FieldSpec(
            spectrum_tolerance=0.02, correlated_fraction=0.5, halo_aware=True
        ),
        "temperature": FieldSpec(correlated_fraction=0.5),
        "velocity_x": FieldSpec(correlated_fraction=0.05),
        "velocity_y": FieldSpec(correlated_fraction=0.05),
        "velocity_z": FieldSpec(correlated_fraction=0.05),
    }
    campaign = CompressionCampaign(dec, field_specs=specs)

    print("calibrating rate models on the first snapshot...")
    campaign.calibrate(sim.snapshot(z=REDSHIFTS[0]), max_partitions=12)

    for z in REDSHIFTS:
        campaign.compress_snapshot(sim.snapshot(z=z))

    report = campaign.report
    rows = [[name, report.field_ratio(name)] for name in FIELD_NAMES]
    print()
    print(format_table(["field", "campaign ratio"], rows, title="Per-field ratios"))
    print(
        format_table(
            ["redshift", "snapshot ratio"],
            [[z, report.snapshot_ratio(z)] for z in REDSHIFTS],
            title="Per-snapshot ratios",
        )
    )

    overall = report.overall_ratio
    print(f"\noverall campaign ratio: {overall:.1f}x")

    # The paper's storage arithmetic, re-run with our measured ratio:
    snap_tb = 2.8  # TB per 4096^3 snapshot
    runs, snaps = 5, 200
    raw_pb = snap_tb * runs * snaps / 1000.0
    print(
        f"paper's scenario ({runs} runs x {snaps} snapshots x {snap_tb} TB): "
        f"{raw_pb:.1f} PB raw -> {raw_pb / overall * 1000:.0f} TB compressed "
        f"at this campaign's ratio"
    )


if __name__ == "__main__":
    main()
