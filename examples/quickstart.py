"""Quickstart: adaptive in situ compression in ~40 lines.

Generates a small Nyx-like snapshot, calibrates the rate model once,
and compresses the temperature field with per-partition error bounds —
comparing against the traditional single-bound configuration.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AdaptiveCompressionPipeline,
    BlockDecomposition,
    NyxSimulator,
    StaticBaseline,
    calibrate_rate_model,
)


def main() -> None:
    # 1. A synthetic Nyx-like snapshot (stands in for real simulation data).
    sim = NyxSimulator(shape=(64, 64, 64), box_size=64.0, seed=42)
    snap = sim.snapshot(z=0.5)
    data = snap["temperature"]
    print(f"snapshot: {snap.shape}, z={snap.redshift}, fields={sorted(snap.fields)}")

    # 2. Partition the grid like the simulation's MPI ranks would.
    dec = BlockDecomposition(snap.shape, blocks=4)  # 64 ranks of 16^3
    print(f"partitions: {dec.n_partitions} x {dec.partition_shape}")

    # 3. Calibrate the rate model (offline, once per simulation campaign).
    eb_avg = float(np.ptp(data.astype(np.float64))) * 3e-3
    cal = calibrate_rate_model(dec.partition_views(data), eb_scale=eb_avg, seed=0)
    print(
        f"rate model: b = C(mean) * eb^{cal.shared_exponent:.2f}, "
        f"C-vs-mean R^2 = {cal.coef_r2:.2f}"
    )

    # 4. Compress adaptively at a fixed average error bound.
    pipe = AdaptiveCompressionPipeline(cal.rate_model)
    result = pipe.run(data, dec, eb_avg=eb_avg)
    static = StaticBaseline().run(data, dec, eb_avg)

    print(f"\nadaptive: ratio {result.overall_ratio:6.2f}x  "
          f"(bounds {result.ebs.min():.3g} .. {result.ebs.max():.3g})")
    print(f"static:   ratio {static.overall_ratio:6.2f}x  (single bound {eb_avg:.3g})")

    # 5. Verify the pointwise error-bound contract on the reconstruction.
    recon = result.reconstruct(dec)
    max_err = np.max(np.abs(recon - data.astype(np.float64)))
    print(f"\nmax pointwise error: {max_err:.4g} (largest bound {result.ebs.max():.4g})")
    assert max_err <= result.ebs.max() + 1e-9


if __name__ == "__main__":
    main()
