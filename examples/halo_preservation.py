"""Halo-preserving compression of the baryon density field.

The density field feeds the halo finder, so its compression must keep
halo masses intact (§3.4).  This example:

1. finds halos in the original field,
2. compresses with the combined spectrum + halo-budget optimization,
3. re-runs the halo finder on the reconstruction and matches catalogs,
4. reports mass/position/count fidelity against a naive static
   configuration at the same average bound.

Run:  python examples/halo_preservation.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AdaptiveCompressionPipeline,
    BlockDecomposition,
    HaloQualitySpec,
    NyxSimulator,
    StaticBaseline,
    calibrate_rate_model,
)
from repro.analysis import compare_catalogs, find_halos
from repro.util.tables import format_table

EB_AVG = 0.5


def main() -> None:
    sim = NyxSimulator(shape=(64, 64, 64), box_size=64.0, seed=42)
    snap = sim.snapshot(z=0.5)
    rho = snap["baryon_density"].astype(np.float64)
    dec = BlockDecomposition(snap.shape, blocks=4)

    # Halo finding on the original field.
    t_boundary = float(np.percentile(rho, 99.5))
    cat0 = find_halos(rho, t_boundary)
    print(
        f"original: {cat0.n_halos} halos above t_boundary={t_boundary:.2f} "
        f"(largest mass {cat0.masses[0]:.4g})"
    )

    # Halo quality budget: 1% of the total halo mass may move (Eq. 11).
    halo = HaloQualitySpec(
        t_boundary=t_boundary,
        mass_budget=0.01 * float(cat0.masses.sum()),
        reference_eb=min(1.0, EB_AVG),
    )

    cal = calibrate_rate_model(
        dec.partition_views(snap["baryon_density"]), eb_scale=EB_AVG, seed=0
    )
    pipe = AdaptiveCompressionPipeline(cal.rate_model)
    adaptive = pipe.run(snap["baryon_density"], dec, eb_avg=EB_AVG, halo=halo)
    static = StaticBaseline().run(snap["baryon_density"], dec, EB_AVG)

    rows = []
    for name, result in (("halo-aware adaptive", adaptive), ("static", static)):
        recon = result.reconstruct(dec)
        cat1 = find_halos(recon, t_boundary)
        cmp = compare_catalogs(cat0, cat1)
        rows.append(
            [
                name,
                result.overall_ratio,
                cmp.count_change,
                cmp.mass_rmse,
                cmp.mass_rmse_above(t_boundary * 27),
                cmp.max_position_error,
            ]
        )
    print()
    print(
        format_table(
            [
                "method",
                "ratio",
                "halo count change",
                "mass RMSE (all)",
                "mass RMSE (mid/large)",
                "max position err (cells)",
            ],
            rows,
            title=f"Halo preservation at average bound {EB_AVG}",
        )
    )
    if adaptive.optimization is not None and adaptive.optimization.halo_constrained:
        print("\nThe halo budget was binding: feature-dense partitions received")
        print("tighter bounds than the power-spectrum optimum alone would give.")


if __name__ == "__main__":
    main()
