"""Walk through the paper's three models on real compressor output.

For one field this script demonstrates, with numbers:

1. the uniform error distribution (Fig. 3),
2. FFT error propagation — predicted vs measured sigma (Figs. 4-5),
3. the power-law rate model and its coefficient-vs-mean fit
   (Fig. 9 / Fig. 10a),
4. the model-derived error-bound budget for a 1% power-spectrum
   tolerance, checked against the real analysis.

Run:  python examples/rate_quality_modeling.py
"""

from __future__ import annotations

import numpy as np

from repro import BlockDecomposition, NyxSimulator, SZCompressor, decompress
from repro.analysis import check_spectrum_quality, power_spectrum
from repro.models import (
    calibrate_rate_model,
    dft_error_sigma,
    spectrum_ratio_tolerance_to_eb,
    sub_threshold_power_estimate,
)
from repro.models.error_distribution import empirical_error_model
from repro.util.tables import format_table


def main() -> None:
    sim = NyxSimulator(shape=(64, 64, 64), box_size=64.0, seed=42)
    snap = sim.snapshot(z=0.5)
    data = snap["temperature"].astype(np.float64)
    dec = BlockDecomposition(snap.shape, blocks=4)
    comp = SZCompressor()

    # -- 1. error distribution ------------------------------------------
    eb = 10.0
    recon = decompress(comp.compress(data, eb))
    mean, std = empirical_error_model(data, recon, eb)
    print(f"1) error distribution at eb={eb}: mean={mean:+.4f}, std={std:.4f} "
          f"(uniform predicts 0, {1 / np.sqrt(3):.4f})")

    # -- 2. FFT error propagation ----------------------------------------
    err_fft_sigma = float((np.fft.fftn(recon) - np.fft.fftn(data)).real.std())
    pred = dft_error_sigma(data.size, eb)
    print(f"2) FFT error sigma: measured={err_fft_sigma:.1f}, "
          f"Eq. 9 predicts sqrt(N/6)*eb={pred:.1f}")

    # -- 3. rate model ----------------------------------------------------
    cal = calibrate_rate_model(dec.partition_views(snap["temperature"]),
                               eb_scale=500.0, seed=0)
    rows = []
    for v in dec.partition_views(snap["temperature"])[:6]:
        mean_abs = float(np.mean(np.abs(v)))
        measured = comp.compress(v, 500.0).bit_rate
        predicted = float(cal.rate_model.predict_bitrate(mean_abs, 500.0))
        rows.append([mean_abs, measured, predicted])
    print("\n3) rate model b = C(mean) * eb^c "
          f"(c={cal.shared_exponent:.3f}, fit R^2={cal.coef_r2:.2f}):")
    print(format_table(["partition mean", "measured b", "predicted b"], rows))

    # -- 4. model-derived budget -----------------------------------------
    ps = power_spectrum(data)
    budget = spectrum_ratio_tolerance_to_eb(
        ps,
        data.size,
        tolerance=0.01,
        k_max=10,
        sub_power_fn=lambda e: sub_threshold_power_estimate(data, e, stride=2),
        correlated_fraction=0.5,
    )
    recon2 = decompress(comp.compress(data, budget))
    ok, dev = check_spectrum_quality(data, recon2, tolerance=0.01)
    print(f"\n4) budget for 1% P(k) tolerance: eb={budget:.4g}")
    print(f"   real analysis at that bound: worst deviation {dev:.4f} "
          f"({'PASS' if ok else 'FAIL'}) — no trial-and-error needed")


if __name__ == "__main__":
    main()
